// Versioned mutable storage plane (DESIGN.md §15).
//
// A VersionedShardStore turns the immutable GraphShard CSR into a
// log-structured store: one immutable *base* CSR plus an append-only list
// of DeltaSegments (edge insert/delete batches), each stamped with the
// monotonically increasing **graph version** that created it. Readers
// never see the log directly — they pin a ShardSnapshot at some version V
// and observe base ⊕ {segments ≤ V}, one coherent graph state, no matter
// how many mutations land or compactions run while the query is in
// flight.
//
// The graph version is deliberately distinct from the ROUTING epoch
// (cluster/shard_map.hpp): the routing epoch versions *where shards live*,
// the graph version versions *what the edges are*. See the DESIGN.md §15
// glossary.
//
// Compaction mirrors the PR 7 migration state machine (Copy → Publish →
// Retire): a fresh base CSR is materialized OUTSIDE the store lock from a
// pinned snapshot, then published as a new generation whose floor is the
// snapshot version; the old generation is retired but kept on a bounded
// list so remote readers can still re-pin recent pre-compaction versions.
// In-process readers keep their snapshot's arrays alive through
// shared_ptrs regardless of retirement — compaction can never free memory
// a reader still walks.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "storage/adjacency_cache.hpp"
#include "storage/shard.hpp"

namespace ppr {

/// One edge appended to a core row. The neighbor endpoint ships fully
/// resolved (<local, shard> + global id) plus the neighbor's weighted
/// degree *at the version preceding the batch* — the same "no remote
/// aggregate at push time" contract the base CSR edges carry (§3.2).
/// Hints on pre-existing edges are not retroactively updated when a
/// neighbor's degree changes; DESIGN.md §15 spells out the contract.
struct EdgeInsert {
  NodeId src_local = 0;
  NodeId nbr_local = 0;
  ShardId nbr_shard = 0;
  NodeId nbr_global = 0;
  float weight = 0;
  float nbr_weighted_deg = 0;
};

/// Remove the first *live* edge src_local → nbr_global (base order, then
/// insertion order). Parallel edges are deleted one at a time.
struct EdgeDelete {
  NodeId src_local = 0;
  NodeId nbr_global = 0;
};

/// One shard's slice of a mutation at one graph version. Within a batch,
/// deletes apply before inserts (so delete-then-reinsert in a single
/// version behaves as written).
struct MutationBatch {
  std::vector<EdgeInsert> inserts;
  std::vector<EdgeDelete> deletes;

  bool empty() const { return inserts.empty() && deletes.empty(); }
  std::size_t num_ops() const { return inserts.size() + deletes.size(); }

  void encode(ByteWriter& w) const;
  static MutationBatch decode(ByteReader& r);
};

/// Immutable batch + version + a per-source index so row merges only walk
/// the ops that touch their row.
class DeltaSegment {
 public:
  DeltaSegment(std::uint64_t version, MutationBatch batch);

  std::uint64_t version() const { return version_; }
  const MutationBatch& batch() const { return batch_; }
  std::size_t num_ops() const { return batch_.num_ops(); }

  struct SrcOps {
    std::vector<std::uint32_t> inserts;  // indices into batch().inserts
    std::vector<std::uint32_t> deletes;  // indices into batch().deletes
  };
  /// Ops touching `src_local`, or nullptr when the row is clean here.
  const SrcOps* ops(NodeId src_local) const;
  bool touches(NodeId src_local) const { return ops(src_local) != nullptr; }

 private:
  std::uint64_t version_ = 0;
  MutationBatch batch_;
  std::unordered_map<NodeId, SrcOps> by_src_;
};

/// One coherent view of a shard at a pinned graph version: the base CSR
/// plus every delta segment ≤ the pin, merged lazily per row into a
/// scratch arena. Mirrors the GraphShard read API bit-for-bit — a clean
/// row (or a clean snapshot) delegates straight to the base, and merged
/// rows encode through the same shared row encoders, so a never-mutated
/// store is byte-identical to the raw shard on every path.
///
/// NOT thread-safe per instance (the scratch arena mutates): the storage
/// service builds one snapshot per request; the fetch pipeline owns one
/// per query. The snapshot holds shared_ptrs to the base + segments and a
/// refcounted pin (visible as the `storage.snapshot_pins` gauge), so the
/// data it reads outlives any concurrent compaction.
class ShardSnapshot {
 public:
  std::uint64_t version() const { return version_; }
  ShardId shard_id() const { return base_->shard_id(); }
  /// True when no segment ≤ the pin exists: every read is pure base.
  bool clean() const { return segments_.empty(); }
  const GraphShard& base() const { return *base_; }
  std::shared_ptr<const GraphShard> base_ptr() const { return base_; }

  NodeId num_core_nodes() const { return base_->num_core_nodes(); }
  NodeId core_global_id(NodeId local) const {
    return base_->core_global_id(local);
  }
  /// d_w of `local` at this version (base value ± merged delta weights).
  float weighted_degree(NodeId local) const;

  /// Any segment ≤ the pin touches this row.
  bool dirty(NodeId local) const;

  /// Neighborhood view at this version. Dirty rows materialize into the
  /// snapshot's scratch arena — the returned view stays valid until
  /// reset_scratch(); clean rows are zero-copy base views.
  VertexProp vertex_prop(NodeId local) const;
  std::vector<VertexProp> get_neighbor_infos(
      std::span<const NodeId> locals) const;

  /// Wire encoders; byte-identical to GraphShard's for clean rows (same
  /// shared encoder underneath).
  void encode_neighbor_infos_csr(std::span<const NodeId> locals, ByteWriter& w,
                                 const FetchOptions& options = {}) const;
  void encode_neighbor_infos_tensor_list(std::span<const NodeId> locals,
                                         ByteWriter& w) const;

  /// Sampling at this version: identical RNG draw sequence to GraphShard's
  /// samplers, so a clean snapshot reproduces the base samples bit-exactly.
  void sample_one_neighbor(std::span<const NodeId> locals, std::uint64_t seed,
                           std::vector<NodeId>& out_local,
                           std::vector<ShardId>& out_shard,
                           std::vector<NodeId>& out_global) const;
  void sample_k_neighbors(std::span<const NodeId> locals, int k,
                          std::uint64_t seed,
                          std::vector<EdgeIndex>& out_indptr,
                          std::vector<NodeId>& out_local,
                          std::vector<ShardId>& out_shard,
                          std::vector<NodeId>& out_global) const;

  /// Drop merged-row scratch (views from vertex_prop become invalid).
  /// Called per pipeline round so long queries don't grow the arena
  /// unboundedly.
  void reset_scratch() const;

 private:
  friend class VersionedShardStore;
  ShardSnapshot(std::shared_ptr<const GraphShard> base,
                std::vector<std::shared_ptr<const DeltaSegment>> segments,
                std::uint64_t version, std::shared_ptr<void> pin);

  /// Merge base row ⊕ segment ops into the scratch arena; returns the
  /// arena row index (cached per local).
  std::size_t merge_row(NodeId local) const;

  std::shared_ptr<const GraphShard> base_;
  std::vector<std::shared_ptr<const DeltaSegment>> segments_;  // ascending
  std::uint64_t version_ = 0;
  std::shared_ptr<void> pin_;  // decrements storage.snapshot_pins on drop

  mutable CachedRowArena scratch_;
  mutable std::unordered_map<NodeId, std::size_t> merged_row_of_;
};

/// The versioned store for one shard: current generation (base + pending
/// segments) plus a bounded list of retired pre-compaction generations so
/// recent old versions stay re-pinnable for remote readers.
class VersionedShardStore {
 public:
  /// Wrap an immutable shard as version-`base_version` (0 = pristine).
  explicit VersionedShardStore(std::shared_ptr<const GraphShard> base,
                               std::uint64_t base_version = 0);

  ShardId shard_id() const;
  /// Base CSR of the newest generation (what a clean latest read serves).
  std::shared_ptr<const GraphShard> base() const;
  /// Newest applied graph version (base_version when never mutated).
  std::uint64_t latest_version() const;
  /// Version of the first mutation ever applied; 0 = never mutated. Used
  /// by the halo-validity gate (v0 halo rows describe other shards'
  /// version-0 state).
  std::uint64_t first_mutation_version() const;
  /// Oldest version still snapshottable (floor of the oldest retained
  /// generation).
  std::uint64_t oldest_pinnable_version() const;
  /// Edges currently living in delta segments of the newest generation.
  std::uint64_t delta_edges() const;
  std::int64_t snapshot_pins() const;

  /// Append one mutation batch at `version` (strictly greater than
  /// latest_version()). Ops are validated against the base row count.
  void apply(std::uint64_t version, MutationBatch batch);

  /// Pin a coherent snapshot at `version` (kVersionLatest = newest).
  /// Fails (GE_REQUIRE) when the version predates the oldest retained
  /// generation — "snapshot version compacted away".
  std::shared_ptr<const ShardSnapshot> snapshot(
      std::uint64_t version = kVersionLatest) const;

  /// Fold pending segments into a fresh base CSR (Copy → Publish →
  /// Retire). Concurrent reads and applies stay safe: materialization
  /// runs outside the lock on a pinned snapshot; segments applied during
  /// the copy carry into the new generation. No-op on a clean store.
  void compact();
  std::uint64_t compactions() const;

  /// Full-store serialization (migration / replica bootstrap): base CSR +
  /// floor/latest/first-mutation versions + pending segments of the
  /// current generation. Retired generations do not ship — a freshly
  /// adopted replica serves versions ≥ its floor.
  void serialize(ByteWriter& w) const;
  static std::shared_ptr<VersionedShardStore> deserialize(ByteReader& r);

  /// Retired generations kept re-pinnable after compaction.
  static constexpr std::size_t kMaxRetiredGenerations = 4;

 private:
  struct Generation {
    std::shared_ptr<const GraphShard> base;
    std::uint64_t floor = 0;  // base materialized at this version
    std::vector<std::shared_ptr<const DeltaSegment>> segments;  // ascending
  };

  struct PinState;

  /// Build a fresh GraphShard equal to `snap` (merged rows + updated
  /// weighted degrees; halo arrays copied from the old base).
  static std::shared_ptr<const GraphShard> materialize(
      const ShardSnapshot& snap);

  std::shared_ptr<const ShardSnapshot> snapshot_locked(
      std::uint64_t version) const;
  void refresh_delta_gauge_locked();

  mutable std::mutex mu_;
  std::mutex compact_mu_;  // serializes concurrent compact() calls
  Generation current_;
  std::vector<Generation> retired_;  // oldest first, bounded
  std::uint64_t latest_ = 0;
  std::uint64_t first_mutation_ = 0;

  std::shared_ptr<PinState> pins_;
  obs::Gauge delta_edges_;
  obs::Counter compactions_;
  std::vector<obs::Registration> regs_;
};

/// Per-process registry of what versions exist: the newest *published*
/// version (safe for new queries to pin — every shard has applied all
/// mutations ≤ it) and per-shard first/last mutation versions feeding the
/// halo/adjacency-cache validity gates. The coordinator notes each shard's
/// mutations BEFORE publishing the version, so any reader that sees
/// published() ≥ V also sees every note ≤ V.
class VersionTracker {
 public:
  explicit VersionTracker(int num_shards);

  int num_shards() const { return static_cast<int>(num_shards_); }

  std::uint64_t published() const {
    return published_.load(std::memory_order_acquire);
  }
  void publish(std::uint64_t version) {
    published_.store(version, std::memory_order_release);
  }
  /// True once any mutation was ever noted; drivers with no explicit pin
  /// keep emitting legacy (unversioned) frames until this flips.
  bool any_mutation() const { return any_.load(std::memory_order_acquire); }

  void note_shard_mutation(ShardId shard, std::uint64_t version);
  /// 0 = shard never mutated.
  std::uint64_t first_mutation(ShardId shard) const;
  std::uint64_t last_mutation(ShardId shard) const;

  /// kVersionLatest → newest published version; concrete pins pass
  /// through.
  std::uint64_t resolve(std::uint64_t version) const {
    return version == kVersionLatest ? published() : version;
  }

 private:
  struct PerShard {
    std::atomic<std::uint64_t> first{0};
    std::atomic<std::uint64_t> last{0};
  };

  std::size_t num_shards_ = 0;
  std::unique_ptr<PerShard[]> shards_;
  std::atomic<std::uint64_t> published_{0};
  std::atomic<bool> any_{false};
};

}  // namespace ppr
