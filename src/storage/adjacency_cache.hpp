// Shard-local adjacency cache: a bounded CLOCK-evicted store of neighbor
// rows fetched from *remote* shards, shared by every query running on the
// machine. Where the halo-adjacency cache (GraphShard) statically holds the
// 1-hop halo set, this cache fills dynamically with whatever rows the
// workload actually pulls over RPC — so rows fetched for one SSPPR query
// serve later iterations and later queries of the batch without another
// remote round-trip (the SALIENT++-style frequency caching direction).
//
// Thread safety: one spinlock guards the index and the slot arrays; hits
// are *copied out* into a caller-owned CachedRowArena under the lock, so a
// concurrent eviction can never invalidate a row another computing process
// is still pushing from.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "concurrent/spinlock.hpp"
#include "obs/metrics.hpp"
#include "storage/shard.hpp"

namespace ppr {

/// Hit/miss/eviction counters, exposed like the halo-cache stats. Backed
/// by registry instruments: constructed with a shard id they attach as
/// `storage.adjacency_cache.*{shard=N}` (shard < 0 = unregistered, for
/// standalone caches in unit tests).
struct AdjacencyCacheStats {
  explicit AdjacencyCacheStats(ShardId shard = -1) {
    if (shard < 0) return;
    const obs::Labels labels{{"shard", std::to_string(shard)}};
    auto& reg = obs::MetricRegistry::global();
    regs_.push_back(reg.attach("storage.adjacency_cache.hits", labels,
                               hits));
    regs_.push_back(reg.attach("storage.adjacency_cache.misses", labels,
                               misses));
    regs_.push_back(reg.attach("storage.adjacency_cache.insertions", labels,
                               insertions));
    regs_.push_back(reg.attach("storage.adjacency_cache.evictions", labels,
                               evictions));
    regs_.push_back(reg.attach("cache.version_invalidations", labels,
                               version_invalidations));
  }

  obs::Counter hits;
  obs::Counter misses;
  obs::Counter insertions;
  obs::Counter evictions;
  /// Entries dropped because the shard's graph version moved past the
  /// version they were filled at (DESIGN.md §15 invalidation contract).
  obs::Counter version_invalidations;

  void reset() {
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    version_invalidations = 0;
  }

 private:
  std::vector<obs::Registration> regs_;
};

/// Owned CSR arena the cache copies hit rows into. Rows are appended by
/// AdjacencyCache::lookup; views from row(i) stay valid until the next
/// append or clear (materialize them only after all lookups of the
/// iteration are done).
class CachedRowArena {
 public:
  void clear() {
    indptr_.clear();
    nbr_local_ids_.clear();
    nbr_shard_ids_.clear();
    edge_weights_.clear();
    nbr_weighted_deg_.clear();
    nbr_global_ids_.clear();
    src_weighted_deg_.clear();
  }

  std::size_t num_rows() const { return src_weighted_deg_.size(); }

  std::size_t append_row(std::span<const NodeId> locals,
                         std::span<const ShardId> shards,
                         std::span<const float> weights,
                         std::span<const float> nbr_wdeg,
                         std::span<const NodeId> globals, float src_wdeg) {
    if (indptr_.empty()) indptr_.push_back(0);
    nbr_local_ids_.insert(nbr_local_ids_.end(), locals.begin(), locals.end());
    nbr_shard_ids_.insert(nbr_shard_ids_.end(), shards.begin(), shards.end());
    edge_weights_.insert(edge_weights_.end(), weights.begin(), weights.end());
    nbr_weighted_deg_.insert(nbr_weighted_deg_.end(), nbr_wdeg.begin(),
                             nbr_wdeg.end());
    nbr_global_ids_.insert(nbr_global_ids_.end(), globals.begin(),
                           globals.end());
    indptr_.push_back(static_cast<EdgeIndex>(nbr_local_ids_.size()));
    src_weighted_deg_.push_back(src_wdeg);
    return src_weighted_deg_.size() - 1;
  }

  VertexProp row(std::size_t i) const {
    const auto lo = static_cast<std::size_t>(indptr_[i]);
    const auto hi = static_cast<std::size_t>(indptr_[i + 1]);
    return VertexProp{
        {nbr_local_ids_.data() + lo, nbr_local_ids_.data() + hi},
        {nbr_shard_ids_.data() + lo, nbr_shard_ids_.data() + hi},
        {edge_weights_.data() + lo, edge_weights_.data() + hi},
        {nbr_weighted_deg_.data() + lo, nbr_weighted_deg_.data() + hi},
        {nbr_global_ids_.data() + lo, nbr_global_ids_.data() + hi},
        src_weighted_deg_[i]};
  }

 private:
  std::vector<EdgeIndex> indptr_;
  std::vector<NodeId> nbr_local_ids_;
  std::vector<ShardId> nbr_shard_ids_;
  std::vector<float> edge_weights_;
  std::vector<float> nbr_weighted_deg_;
  std::vector<NodeId> nbr_global_ids_;
  std::vector<float> src_weighted_deg_;
};

class AdjacencyCache {
 public:
  /// `capacity_rows`: maximum number of cached neighbor rows; above it the
  /// CLOCK hand evicts the first row whose reference bit is clear.
  /// `shard` labels the registry-attached counters (< 0 = unregistered).
  explicit AdjacencyCache(std::size_t capacity_rows, ShardId shard = -1);

  std::size_t capacity() const { return slots_.size(); }
  std::size_t size() const;

  /// Probe `<locals[i], dst>` for every i. Hits are copied into `arena`
  /// (hit_rows[t] = arena row of hit t, hit_indices[t] = its position in
  /// `locals`); misses land in miss_locals/miss_indices. Output vectors
  /// are cleared first.
  ///
  /// Version contract (DESIGN.md §15): `shard_last_mut` is shard `dst`'s
  /// last-mutation version L (0 = never mutated) and `graph_version` the
  /// reader's pin. An entry tagged with a version other than L was filled
  /// before the shard last changed — it is ERASED (counted as a
  /// version_invalidation) so the refill re-caches current data. An
  /// entry tagged L serves a reader pinned at V ≥ L (the row cannot have
  /// changed in (L, V]); a reader pinned BEFORE L misses without erasing,
  /// since the entry is still right for newer readers. The defaults
  /// (L = 0, pin = latest) reproduce the unversioned behavior exactly.
  void lookup(ShardId dst, std::span<const NodeId> locals,
              CachedRowArena& arena, std::vector<std::size_t>& hit_indices,
              std::vector<std::size_t>& hit_rows,
              std::vector<NodeId>& miss_locals,
              std::vector<std::size_t>& miss_indices,
              std::uint64_t shard_last_mut = 0,
              std::uint64_t graph_version = kVersionLatest);

  /// Insert one row for `<local, dst>` (no-op if already resident, beyond
  /// refreshing its reference bit). The row was fetched pinned at
  /// `graph_version`; it is cached (tagged with `shard_last_mut`) only
  /// when that pin proves it current — i.e. pin ≥ last mutation. Rows
  /// fetched through an old pin are simply not cached.
  void insert(ShardId dst, NodeId local, const VertexProp& row,
              std::uint64_t shard_last_mut = 0,
              std::uint64_t graph_version = kVersionLatest);

  const AdjacencyCacheStats& stats() const { return stats_; }
  AdjacencyCacheStats& stats() { return stats_; }

 private:
  struct Slot {
    std::uint64_t key = 0;
    bool used = false;
    std::uint8_t referenced = 0;  // CLOCK second-chance bit
    // Shard's last-mutation version when the row was filled; a later
    // mutation bumps the shard past this tag and the entry self-erases
    // on its next probe.
    std::uint64_t version_tag = 0;
    float weighted_degree = 0;
    std::vector<NodeId> nbr_local_ids;
    std::vector<ShardId> nbr_shard_ids;
    std::vector<float> edge_weights;
    std::vector<float> nbr_weighted_deg;
    std::vector<NodeId> nbr_global_ids;
  };

  /// Pick the victim slot: first unused slot, else advance the CLOCK hand
  /// until a slot with a clear reference bit comes up. Caller holds lock_.
  std::size_t victim_slot();

  mutable Spinlock lock_;
  // The index needs per-key erase on eviction, which the repo's FlatMap
  // deliberately omits (the PPR maps never erase), so the cache keeps a
  // plain unordered_map — this is not the operator hot path.
  std::unordered_map<std::uint64_t, std::uint32_t> index_;
  std::vector<Slot> slots_;
  std::size_t used_slots_ = 0;
  std::size_t hand_ = 0;
  AdjacencyCacheStats stats_;
  obs::Gauge resident_rows_;  // registry view of size()
  obs::Registration resident_reg_;
};

}  // namespace ppr
