#include "storage/versioned_shard.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/rng.hpp"
#include "obs/trace.hpp"

namespace ppr {

// ---------------------------------------------------------------------------
// MutationBatch

void MutationBatch::encode(ByteWriter& w) const {
  w.write<std::uint32_t>(static_cast<std::uint32_t>(inserts.size()));
  for (const EdgeInsert& e : inserts) {
    w.write<NodeId>(e.src_local);
    w.write<NodeId>(e.nbr_local);
    w.write<ShardId>(e.nbr_shard);
    w.write<NodeId>(e.nbr_global);
    w.write<float>(e.weight);
    w.write<float>(e.nbr_weighted_deg);
  }
  w.write<std::uint32_t>(static_cast<std::uint32_t>(deletes.size()));
  for (const EdgeDelete& e : deletes) {
    w.write<NodeId>(e.src_local);
    w.write<NodeId>(e.nbr_global);
  }
}

MutationBatch MutationBatch::decode(ByteReader& r) {
  MutationBatch b;
  const auto num_inserts = r.read<std::uint32_t>();
  // Each insert owes 24 bytes, so a hostile count cannot force a huge
  // allocation past the frame.
  GE_REQUIRE(num_inserts <= r.remaining() / 24,
             "mutation insert count exceeds frame");
  b.inserts.resize(num_inserts);
  for (EdgeInsert& e : b.inserts) {
    e.src_local = r.read<NodeId>();
    e.nbr_local = r.read<NodeId>();
    e.nbr_shard = r.read<ShardId>();
    e.nbr_global = r.read<NodeId>();
    e.weight = r.read<float>();
    e.nbr_weighted_deg = r.read<float>();
  }
  const auto num_deletes = r.read<std::uint32_t>();
  GE_REQUIRE(num_deletes <= r.remaining() / 8,
             "mutation delete count exceeds frame");
  b.deletes.resize(num_deletes);
  for (EdgeDelete& e : b.deletes) {
    e.src_local = r.read<NodeId>();
    e.nbr_global = r.read<NodeId>();
  }
  return b;
}

// ---------------------------------------------------------------------------
// DeltaSegment

DeltaSegment::DeltaSegment(std::uint64_t version, MutationBatch batch)
    : version_(version), batch_(std::move(batch)) {
  for (std::size_t i = 0; i < batch_.inserts.size(); ++i) {
    by_src_[batch_.inserts[i].src_local].inserts.push_back(
        static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = 0; i < batch_.deletes.size(); ++i) {
    by_src_[batch_.deletes[i].src_local].deletes.push_back(
        static_cast<std::uint32_t>(i));
  }
}

const DeltaSegment::SrcOps* DeltaSegment::ops(NodeId src_local) const {
  const auto it = by_src_.find(src_local);
  return it == by_src_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// ShardSnapshot

ShardSnapshot::ShardSnapshot(
    std::shared_ptr<const GraphShard> base,
    std::vector<std::shared_ptr<const DeltaSegment>> segments,
    std::uint64_t version, std::shared_ptr<void> pin)
    : base_(std::move(base)),
      segments_(std::move(segments)),
      version_(version),
      pin_(std::move(pin)) {}

bool ShardSnapshot::dirty(NodeId local) const {
  for (const auto& seg : segments_) {
    if (seg->touches(local)) return true;
  }
  return false;
}

std::size_t ShardSnapshot::merge_row(NodeId local) const {
  const auto it = merged_row_of_.find(local);
  if (it != merged_row_of_.end()) return it->second;

  const VertexProp b = base_->vertex_prop(local);
  std::vector<NodeId> locals(b.nbr_local_ids.begin(), b.nbr_local_ids.end());
  std::vector<ShardId> shards(b.nbr_shard_ids.begin(),
                              b.nbr_shard_ids.end());
  std::vector<float> weights(b.edge_weights.begin(), b.edge_weights.end());
  std::vector<float> nbr_dw(b.nbr_weighted_degrees.begin(),
                            b.nbr_weighted_degrees.end());
  std::vector<NodeId> globals(b.nbr_global_ids.begin(),
                              b.nbr_global_ids.end());
  // d_w evolves strictly left-to-right over the segment log, so a frozen
  // copy of the graph at this version (same base + same batches) computes
  // the bit-identical float — the property the equivalence tests pin.
  float dw = b.weighted_degree;

  for (const auto& seg : segments_) {
    const DeltaSegment::SrcOps* ops = seg->ops(local);
    if (ops == nullptr) continue;
    // Deletes before inserts within a segment: delete-then-reinsert at one
    // version behaves as written.
    for (const std::uint32_t di : ops->deletes) {
      const EdgeDelete& d = seg->batch().deletes[di];
      bool found = false;
      for (std::size_t k = 0; k < globals.size(); ++k) {
        if (globals[k] != d.nbr_global) continue;
        dw -= weights[k];
        globals.erase(globals.begin() + static_cast<std::ptrdiff_t>(k));
        locals.erase(locals.begin() + static_cast<std::ptrdiff_t>(k));
        shards.erase(shards.begin() + static_cast<std::ptrdiff_t>(k));
        weights.erase(weights.begin() + static_cast<std::ptrdiff_t>(k));
        nbr_dw.erase(nbr_dw.begin() + static_cast<std::ptrdiff_t>(k));
        found = true;
        break;
      }
      GE_REQUIRE(found, "delete of non-existent edge " +
                            std::to_string(local) + " -> global " +
                            std::to_string(d.nbr_global));
    }
    for (const std::uint32_t ii : ops->inserts) {
      const EdgeInsert& ins = seg->batch().inserts[ii];
      locals.push_back(ins.nbr_local);
      shards.push_back(ins.nbr_shard);
      weights.push_back(ins.weight);
      nbr_dw.push_back(ins.nbr_weighted_deg);
      globals.push_back(ins.nbr_global);
      dw += ins.weight;
    }
  }

  const std::size_t row =
      scratch_.append_row(locals, shards, weights, nbr_dw, globals, dw);
  merged_row_of_.emplace(local, row);
  return row;
}

float ShardSnapshot::weighted_degree(NodeId local) const {
  if (!dirty(local)) return base_->core_weighted_degree(local);
  return scratch_.row(merge_row(local)).weighted_degree;
}

VertexProp ShardSnapshot::vertex_prop(NodeId local) const {
  if (!dirty(local)) return base_->vertex_prop(local);
  return scratch_.row(merge_row(local));
}

std::vector<VertexProp> ShardSnapshot::get_neighbor_infos(
    std::span<const NodeId> locals) const {
  if (clean()) return base_->get_neighbor_infos(locals);
  // Merge every dirty row first: arena appends invalidate earlier views,
  // so views materialize only once the arena is stable.
  for (const NodeId l : locals) {
    if (dirty(l)) (void)merge_row(l);
  }
  std::vector<VertexProp> props;
  props.reserve(locals.size());
  for (const NodeId l : locals) {
    props.push_back(dirty(l) ? scratch_.row(merged_row_of_.at(l))
                             : base_->vertex_prop(l));
  }
  return props;
}

void ShardSnapshot::encode_neighbor_infos_csr(std::span<const NodeId> locals,
                                              ByteWriter& w,
                                              const FetchOptions& options)
    const {
  if (clean()) {
    base_->encode_neighbor_infos_csr(locals, w, options);
    return;
  }
  for (const NodeId l : locals) {
    if (dirty(l)) (void)merge_row(l);
  }
  std::vector<RowPtrs> rows;
  rows.reserve(locals.size());
  for (const NodeId l : locals) {
    const VertexProp p = dirty(l) ? scratch_.row(merged_row_of_.at(l))
                                  : base_->vertex_prop(l);
    rows.push_back(RowPtrs{p.nbr_local_ids.data(), p.nbr_shard_ids.data(),
                           p.edge_weights.data(),
                           p.nbr_weighted_degrees.data(),
                           p.nbr_global_ids.data(), p.degree(),
                           p.weighted_degree});
  }
  encode_rows_csr(rows, w, options);
}

void ShardSnapshot::encode_neighbor_infos_tensor_list(
    std::span<const NodeId> locals, ByteWriter& w) const {
  if (clean()) {
    base_->encode_neighbor_infos_tensor_list(locals, w);
    return;
  }
  for (const NodeId l : locals) {
    if (dirty(l)) (void)merge_row(l);
  }
  std::vector<RowPtrs> rows;
  rows.reserve(locals.size());
  for (const NodeId l : locals) {
    const VertexProp p = dirty(l) ? scratch_.row(merged_row_of_.at(l))
                                  : base_->vertex_prop(l);
    rows.push_back(RowPtrs{p.nbr_local_ids.data(), p.nbr_shard_ids.data(),
                           p.edge_weights.data(),
                           p.nbr_weighted_degrees.data(),
                           p.nbr_global_ids.data(), p.degree(),
                           p.weighted_degree});
  }
  encode_rows_tensor_list(rows, w);
}

void ShardSnapshot::sample_one_neighbor(std::span<const NodeId> locals,
                                        std::uint64_t seed,
                                        std::vector<NodeId>& out_local,
                                        std::vector<ShardId>& out_shard,
                                        std::vector<NodeId>& out_global)
    const {
  if (clean()) {
    base_->sample_one_neighbor(locals, seed, out_local, out_shard,
                               out_global);
    return;
  }
  for (const NodeId l : locals) {
    if (dirty(l)) (void)merge_row(l);
  }
  // Same draw sequence as GraphShard::sample_one_neighbor: degree-0 rows
  // consume no draw, every other row consumes exactly one next_float.
  Rng rng(seed);
  out_local.resize(locals.size());
  out_shard.resize(locals.size());
  out_global.resize(locals.size());
  for (std::size_t i = 0; i < locals.size(); ++i) {
    const VertexProp prop = dirty(locals[i])
                                ? scratch_.row(merged_row_of_.at(locals[i]))
                                : base_->vertex_prop(locals[i]);
    if (prop.degree() == 0) {
      out_local[i] = locals[i];
      out_shard[i] = shard_id();
      out_global[i] = base_->core_global_id(locals[i]);
      continue;
    }
    const float target = rng.next_float(0.0f, prop.weighted_degree);
    float acc = 0;
    std::size_t pick = prop.degree() - 1;
    for (std::size_t k = 0; k < prop.degree(); ++k) {
      acc += prop.edge_weights[k];
      if (acc >= target) {
        pick = k;
        break;
      }
    }
    out_local[i] = prop.nbr_local_ids[pick];
    out_shard[i] = prop.nbr_shard_ids[pick];
    out_global[i] = prop.nbr_global_ids[pick];
  }
}

void ShardSnapshot::sample_k_neighbors(std::span<const NodeId> locals, int k,
                                       std::uint64_t seed,
                                       std::vector<EdgeIndex>& out_indptr,
                                       std::vector<NodeId>& out_local,
                                       std::vector<ShardId>& out_shard,
                                       std::vector<NodeId>& out_global)
    const {
  if (clean()) {
    base_->sample_k_neighbors(locals, k, seed, out_indptr, out_local,
                              out_shard, out_global);
    return;
  }
  GE_REQUIRE(k >= 1, "k must be positive");
  for (const NodeId l : locals) {
    if (dirty(l)) (void)merge_row(l);
  }
  Rng rng(seed);
  out_indptr.assign(1, 0);
  out_local.clear();
  out_shard.clear();
  out_global.clear();
  std::vector<std::size_t> picks;
  for (const NodeId l : locals) {
    const VertexProp prop = dirty(l) ? scratch_.row(merged_row_of_.at(l))
                                     : base_->vertex_prop(l);
    const std::size_t deg = prop.degree();
    const std::size_t take =
        std::min<std::size_t>(deg, static_cast<std::size_t>(k));
    picks.resize(deg);
    for (std::size_t i = 0; i < deg; ++i) picks[i] = i;
    // Partial Fisher–Yates, identical draws to the base sampler.
    for (std::size_t i = 0; i < take; ++i) {
      const std::size_t j = i + rng.next_u64(deg - i);
      std::swap(picks[i], picks[j]);
    }
    for (std::size_t i = 0; i < take; ++i) {
      const std::size_t e = picks[i];
      out_local.push_back(prop.nbr_local_ids[e]);
      out_shard.push_back(prop.nbr_shard_ids[e]);
      out_global.push_back(prop.nbr_global_ids[e]);
    }
    out_indptr.push_back(static_cast<EdgeIndex>(out_local.size()));
  }
}

void ShardSnapshot::reset_scratch() const {
  scratch_.clear();
  merged_row_of_.clear();
}

// ---------------------------------------------------------------------------
// VersionedShardStore

struct VersionedShardStore::PinState {
  explicit PinState(ShardId shard) {
    if (shard < 0) return;
    reg = obs::MetricRegistry::global().attach(
        "storage.snapshot_pins", {{"shard", std::to_string(shard)}}, pins);
  }
  obs::Gauge pins;
  obs::Registration reg;
};

VersionedShardStore::VersionedShardStore(
    std::shared_ptr<const GraphShard> base, std::uint64_t base_version) {
  GE_REQUIRE(base != nullptr, "versioned store needs a base shard");
  current_.base = std::move(base);
  current_.floor = base_version;
  latest_ = base_version;
  const ShardId shard = current_.base->shard_id();
  pins_ = std::make_shared<PinState>(shard);
  const obs::Labels labels{{"shard", std::to_string(shard)}};
  auto& reg = obs::MetricRegistry::global();
  regs_.push_back(reg.attach("storage.delta_edges", labels, delta_edges_));
  regs_.push_back(reg.attach("storage.compactions", labels, compactions_));
}

ShardId VersionedShardStore::shard_id() const {
  std::lock_guard<std::mutex> lk(mu_);
  return current_.base->shard_id();
}

std::shared_ptr<const GraphShard> VersionedShardStore::base() const {
  std::lock_guard<std::mutex> lk(mu_);
  return current_.base;
}

std::uint64_t VersionedShardStore::latest_version() const {
  std::lock_guard<std::mutex> lk(mu_);
  return latest_;
}

std::uint64_t VersionedShardStore::first_mutation_version() const {
  std::lock_guard<std::mutex> lk(mu_);
  return first_mutation_;
}

std::uint64_t VersionedShardStore::oldest_pinnable_version() const {
  std::lock_guard<std::mutex> lk(mu_);
  return retired_.empty() ? current_.floor : retired_.front().floor;
}

std::uint64_t VersionedShardStore::delta_edges() const {
  return static_cast<std::uint64_t>(delta_edges_.load());
}

std::int64_t VersionedShardStore::snapshot_pins() const {
  return pins_->pins.load();
}

std::uint64_t VersionedShardStore::compactions() const {
  return compactions_.load();
}

void VersionedShardStore::refresh_delta_gauge_locked() {
  std::uint64_t ops = 0;
  for (const auto& seg : current_.segments) ops += seg->num_ops();
  delta_edges_.set(static_cast<std::int64_t>(ops));
}

void VersionedShardStore::apply(std::uint64_t version, MutationBatch batch) {
  obs::ScopedSpan span("storage.mutate");
  span.annotate("version=" + std::to_string(version) +
                " ops=" + std::to_string(batch.num_ops()));
  auto seg = std::make_shared<const DeltaSegment>(version, std::move(batch));
  std::lock_guard<std::mutex> lk(mu_);
  GE_REQUIRE(version > latest_,
             "mutation versions must be strictly ascending (got " +
                 std::to_string(version) + ", latest " +
                 std::to_string(latest_) + ")");
  const NodeId n = current_.base->num_core_nodes();
  for (const EdgeInsert& e : seg->batch().inserts) {
    GE_REQUIRE(e.src_local >= 0 && e.src_local < n,
               "edge insert source out of range");
    GE_REQUIRE(e.nbr_local >= 0 && e.nbr_shard >= 0 && e.nbr_global >= 0 &&
                   e.weight >= 0,
               "malformed edge insert");
  }
  for (const EdgeDelete& e : seg->batch().deletes) {
    GE_REQUIRE(e.src_local >= 0 && e.src_local < n,
               "edge delete source out of range");
  }
  current_.segments.push_back(std::move(seg));
  latest_ = version;
  if (first_mutation_ == 0) first_mutation_ = version;
  refresh_delta_gauge_locked();
}

std::shared_ptr<const ShardSnapshot> VersionedShardStore::snapshot(
    std::uint64_t version) const {
  std::lock_guard<std::mutex> lk(mu_);
  return snapshot_locked(version);
}

std::shared_ptr<const ShardSnapshot> VersionedShardStore::snapshot_locked(
    std::uint64_t version) const {
  const std::uint64_t v = (version == kVersionLatest) ? latest_ : version;
  const Generation* gen = nullptr;
  if (v >= current_.floor) {
    gen = &current_;
  } else {
    // Newest retired generation whose base predates the pin still holds
    // every segment needed to reach it (compaction moves only segments
    // *newer* than the new floor forward).
    for (auto it = retired_.rbegin(); it != retired_.rend(); ++it) {
      if (v >= it->floor) {
        gen = &*it;
        break;
      }
    }
  }
  GE_REQUIRE(gen != nullptr, "snapshot version " + std::to_string(v) +
                                 " compacted away (oldest pinnable " +
                                 std::to_string(retired_.empty()
                                                    ? current_.floor
                                                    : retired_.front().floor) +
                                 ")");
  std::vector<std::shared_ptr<const DeltaSegment>> segs;
  for (const auto& seg : gen->segments) {
    if (seg->version() <= v) segs.push_back(seg);
  }
  pins_->pins.add(1);
  auto st = pins_;
  std::shared_ptr<void> token(new int(0), [st](void* p) {
    delete static_cast<int*>(p);
    st->pins.add(-1);
  });
  return std::shared_ptr<const ShardSnapshot>(new ShardSnapshot(
      gen->base, std::move(segs), v, std::move(token)));
}

std::shared_ptr<const GraphShard> VersionedShardStore::materialize(
    const ShardSnapshot& snap) {
  const GraphShard& old = snap.base();
  auto shard = std::shared_ptr<GraphShard>(new GraphShard());
  shard->shard_id_ = old.shard_id_;
  const NodeId n = old.num_core_nodes();
  shard->core_global_ids_ = old.core_global_ids_;
  shard->indptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  shard->core_weighted_deg_.resize(static_cast<std::size_t>(n));
  for (NodeId l = 0; l < n; ++l) {
    const VertexProp p = snap.vertex_prop(l);
    shard->core_weighted_deg_[static_cast<std::size_t>(l)] =
        p.weighted_degree;
    shard->nbr_local_ids_.insert(shard->nbr_local_ids_.end(),
                                 p.nbr_local_ids.begin(),
                                 p.nbr_local_ids.end());
    shard->nbr_shard_ids_.insert(shard->nbr_shard_ids_.end(),
                                 p.nbr_shard_ids.begin(),
                                 p.nbr_shard_ids.end());
    shard->edge_weights_.insert(shard->edge_weights_.end(),
                                p.edge_weights.begin(),
                                p.edge_weights.end());
    shard->nbr_weighted_deg_.insert(shard->nbr_weighted_deg_.end(),
                                    p.nbr_weighted_degrees.begin(),
                                    p.nbr_weighted_degrees.end());
    shard->nbr_global_ids_.insert(shard->nbr_global_ids_.end(),
                                  p.nbr_global_ids.begin(),
                                  p.nbr_global_ids.end());
    shard->indptr_[static_cast<std::size_t>(l) + 1] =
        shard->indptr_[static_cast<std::size_t>(l)] +
        static_cast<EdgeIndex>(p.degree());
  }
  // Halo rows stay version-0 copies of other shards' state; the halo
  // validity gate (VersionTracker::first_mutation) decides whether a query
  // may consume them, so compaction carries them through unchanged.
  shard->halo_cache_enabled_ = old.halo_cache_enabled_;
  shard->halo_row_of_ = old.halo_row_of_;
  shard->halo_indptr_ = old.halo_indptr_;
  shard->halo_weighted_deg_ = old.halo_weighted_deg_;
  shard->halo_nbr_local_ids_ = old.halo_nbr_local_ids_;
  shard->halo_nbr_shard_ids_ = old.halo_nbr_shard_ids_;
  shard->halo_edge_weights_ = old.halo_edge_weights_;
  shard->halo_nbr_weighted_deg_ = old.halo_nbr_weighted_deg_;
  shard->halo_nbr_global_ids_ = old.halo_nbr_global_ids_;
  return shard;
}

void VersionedShardStore::compact() {
  obs::ScopedSpan span("storage.compaction");
  // Serialize compactions against each other; readers and apply() only
  // contend on mu_ for the short publish step.
  std::lock_guard<std::mutex> compact_lk(compact_mu_);
  std::shared_ptr<const ShardSnapshot> snap;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (current_.segments.empty()) return;  // nothing to fold
    snap = snapshot_locked(kVersionLatest);
  }
  span.annotate("version=" + std::to_string(snap->version()));
  // Copy: materialize the merged CSR outside the lock — mutations and
  // reads proceed concurrently against the still-current generation.
  auto fresh = materialize(*snap);
  // Publish + Retire.
  std::lock_guard<std::mutex> lk(mu_);
  Generation next;
  next.base = std::move(fresh);
  next.floor = snap->version();
  for (const auto& seg : current_.segments) {
    if (seg->version() > snap->version()) next.segments.push_back(seg);
  }
  retired_.push_back(std::move(current_));
  current_ = std::move(next);
  if (retired_.size() > kMaxRetiredGenerations) {
    retired_.erase(retired_.begin());
  }
  compactions_.add(1);
  refresh_delta_gauge_locked();
}

void VersionedShardStore::serialize(ByteWriter& w) const {
  std::lock_guard<std::mutex> lk(mu_);
  w.write<std::uint8_t>(1);  // store snapshot layout version
  current_.base->serialize(w);
  w.write<std::uint64_t>(current_.floor);
  w.write<std::uint64_t>(latest_);
  w.write<std::uint64_t>(first_mutation_);
  w.write<std::uint32_t>(static_cast<std::uint32_t>(
      current_.segments.size()));
  for (const auto& seg : current_.segments) {
    w.write<std::uint64_t>(seg->version());
    seg->batch().encode(w);
  }
}

std::shared_ptr<VersionedShardStore> VersionedShardStore::deserialize(
    ByteReader& r) {
  const auto layout = r.read<std::uint8_t>();
  GE_REQUIRE(layout == 1,
             "unknown store snapshot layout " + std::to_string(layout));
  auto base = GraphShard::deserialize(r);
  const auto floor = r.read<std::uint64_t>();
  const auto latest = r.read<std::uint64_t>();
  const auto first_mutation = r.read<std::uint64_t>();
  auto store = std::make_shared<VersionedShardStore>(std::move(base), floor);
  const auto num_segments = r.read<std::uint32_t>();
  for (std::uint32_t i = 0; i < num_segments; ++i) {
    const auto version = r.read<std::uint64_t>();
    store->apply(version, MutationBatch::decode(r));
  }
  std::lock_guard<std::mutex> lk(store->mu_);
  GE_REQUIRE(store->latest_ == latest,
             "store snapshot latest version inconsistent with segments");
  // The source store may have compacted away the first mutation's segment;
  // restore the recorded value so halo validity gating stays correct.
  store->first_mutation_ = first_mutation;
  return store;
}

// ---------------------------------------------------------------------------
// VersionTracker

VersionTracker::VersionTracker(int num_shards)
    : num_shards_(static_cast<std::size_t>(num_shards)),
      shards_(new PerShard[static_cast<std::size_t>(num_shards)]) {
  GE_REQUIRE(num_shards > 0, "version tracker needs at least one shard");
}

void VersionTracker::note_shard_mutation(ShardId shard,
                                         std::uint64_t version) {
  GE_REQUIRE(shard >= 0 && static_cast<std::size_t>(shard) < num_shards_,
             "shard id out of range");
  PerShard& s = shards_[static_cast<std::size_t>(shard)];
  std::uint64_t expected = 0;
  s.first.compare_exchange_strong(expected, version,
                                  std::memory_order_acq_rel);
  // Mutations are coordinated under one process-wide mutation lock, so
  // `last` only moves forward.
  s.last.store(version, std::memory_order_release);
  any_.store(true, std::memory_order_release);
}

std::uint64_t VersionTracker::first_mutation(ShardId shard) const {
  GE_REQUIRE(shard >= 0 && static_cast<std::size_t>(shard) < num_shards_,
             "shard id out of range");
  return shards_[static_cast<std::size_t>(shard)].first.load(
      std::memory_order_acquire);
}

std::uint64_t VersionTracker::last_mutation(ShardId shard) const {
  GE_REQUIRE(shard >= 0 && static_cast<std::size_t>(shard) < num_shards_,
             "shard id out of range");
  return shards_[static_cast<std::size_t>(shard)].last.load(
      std::memory_order_acquire);
}

}  // namespace ppr
