#include "storage/fetch_pipeline.hpp"

#include "obs/trace.hpp"

namespace ppr {

namespace {
/// Registry histograms of per-execute() phase wall time, one per Phase
/// label — the registered-instrument form of the PhaseTimers breakdown.
/// (Magic-static init keeps concurrent first calls race-free.)
obs::Histogram& phase_histogram(Phase p) {
  static const auto make = [](Phase ph) {
    return &obs::MetricRegistry::global().histogram(
        "pipeline.phase_us", {{"phase", phase_name(ph)}});
  };
  static obs::Histogram* const hists[kNumPhases] = {
      make(Phase::kPop), make(Phase::kLocalFetch), make(Phase::kRemoteFetch),
      make(Phase::kPush), make(Phase::kOther)};
  return *hists[static_cast<int>(p)];
}
}  // namespace

FetchPipeline::FetchPipeline(const DistGraphStorage& storage)
    : storage_(storage) {
  const auto ns = static_cast<std::size_t>(storage.num_shards());
  union_locals_.resize(ns);
  union_index_.resize(ns);
  resolved_.resize(ns);
  sources_.resize(ns);
  arenas_.resize(ns);
  halo_splits_.resize(ns);
  adj_splits_.resize(ns);
  fetch_locals_.resize(ns);
  fetch_rows_.resize(ns);
  fetches_.resize(ns);
  batches_.resize(ns);
}

void FetchPipeline::pin(std::uint64_t graph_version) {
  pin_ = graph_version;
  const auto& store = storage_.local_store();
  // Freeze the self-shard now: every round of this query reads the same
  // snapshot no matter how many mutations land while it runs. Without a
  // store (legacy deployments) the base CSR serves, as before.
  snapshot_ = store != nullptr ? store->snapshot(pin_) : nullptr;
}

void FetchPipeline::begin_round() {
  // Merged-row views handed out last round pointed into the snapshot's
  // scratch arena; recycle it with the rest of the round scratch.
  if (snapshot_ != nullptr) snapshot_->reset_scratch();
  for (std::size_t j = 0; j < union_locals_.size(); ++j) {
    union_locals_[j].clear();
    union_index_[j].clear();
    resolved_[j].clear();
    sources_[j].clear();
    arenas_[j].clear();
    fetch_locals_[j].clear();
    fetch_rows_[j].clear();
    // A stale fetch would be waited on twice when a later round skips
    // this shard; Future::wait() consumes its payload.
    fetches_[j] = NeighborFetch();
  }
}

std::uint32_t FetchPipeline::add(ShardId shard, NodeId local) {
  const auto j = static_cast<std::size_t>(shard);
  auto& index = union_index_[j];
  const auto key = static_cast<std::uint64_t>(local);
  if (const std::uint32_t* row = index.find(key); row != nullptr) {
    return *row;
  }
  const auto row = static_cast<std::uint32_t>(union_locals_[j].size());
  index[key] = row;
  union_locals_[j].push_back(local);
  return row;
}

std::uint32_t FetchPipeline::row_of(ShardId shard, NodeId local) const {
  const std::uint32_t* row =
      union_index_[static_cast<std::size_t>(shard)].find(
          static_cast<std::uint64_t>(local));
  GE_CHECK(row != nullptr, "row_of on a pair never add()ed this round");
  return *row;
}

std::span<const NodeId> FetchPipeline::requested(ShardId shard) const {
  return union_locals_[static_cast<std::size_t>(shard)];
}

std::size_t FetchPipeline::num_rows(ShardId shard) const {
  return union_locals_[static_cast<std::size_t>(shard)].size();
}

void FetchPipeline::resolve_remote_shard(std::size_t j, const Plan& plan) {
  const auto& uni = union_locals_[j];
  resolved_[j].assign(uni.size(), VertexProp{});
  sources_[j].assign(uni.size(), RowSource::kRemote);

  // Rows still unresolved after the halo split, as union rows. Halo rows
  // are version-0 copies: once shard j has mutated at or before the pin
  // they can be stale, so the split is skipped and those rows read
  // through the owner's snapshot instead (halo_valid_at).
  std::span<const NodeId> pending_locals = uni;
  const std::vector<std::size_t>* pending_rows = nullptr;  // identity
  if (storage_.halo_cache_enabled() &&
      storage_.halo_valid_at(static_cast<ShardId>(j), pin_)) {
    auto& hs = halo_splits_[j];
    hs = storage_.split_by_halo_cache(static_cast<ShardId>(j), uni);
    for (std::size_t h = 0; h < hs.hit_indices.size(); ++h) {
      resolved_[j][hs.hit_indices[h]] = hs.hit_props[h];
      sources_[j][hs.hit_indices[h]] = RowSource::kHalo;
    }
    stats_.rows_halo += hs.hit_indices.size();
    pending_locals = hs.miss_locals;
    pending_rows = &hs.miss_indices;
  }
  const auto pending_row = [&](std::size_t p) {
    return static_cast<std::uint32_t>(
        pending_rows != nullptr ? (*pending_rows)[p] : p);
  };

  auto& as = adj_splits_[j];
  as = storage_.split_by_adjacency_cache(static_cast<ShardId>(j),
                                         pending_locals, arenas_[j], pin_);
  // All of this shard's arena appends happened inside that one lookup,
  // so the views handed out below stay stable for the round.
  for (std::size_t h = 0; h < as.hit_indices.size(); ++h) {
    const std::uint32_t row = pending_row(as.hit_indices[h]);
    resolved_[j][row] = arenas_[j].row(as.hit_rows[h]);
    sources_[j][row] = RowSource::kCache;
  }
  stats_.rows_cached += as.hit_indices.size();
  for (std::size_t m = 0; m < as.miss_locals.size(); ++m) {
    fetch_locals_[j].push_back(as.miss_locals[m]);
    fetch_rows_[j].push_back(pending_row(as.miss_indices[m]));
  }

  if (!fetch_locals_[j].empty()) {
    FetchOptions options = plan.fetch_options();
    options.graph_version = pin_;
    fetches_[j] = storage_.get_neighbor_infos_async(
        static_cast<ShardId>(j), fetch_locals_[j], options);
    stats_.rows_wire += fetch_locals_[j].size();
    ++stats_.rpcs_issued;
  }
}

void FetchPipeline::execute(const Plan& plan, PhaseTimers* timers,
                            const std::function<void()>& local_work) {
  PhaseTimers& t = timers != nullptr ? *timers : timers_;
  const auto ns = union_locals_.size();
  const auto self = static_cast<std::size_t>(storage_.shard_id());
  ++stats_.rounds;
  // One span per resolution round; the RPCs issued below inherit it as
  // their parent, so server-side decode lands under this round's fetch.
  obs::ScopedSpan span("pipeline.execute");

  double remote_us = 0;

  // --- Split by residency and issue at most one RPC per remote shard. ---
  {
    ScopedPhase phase(t, Phase::kRemoteFetch);
    WallTimer wall;
    for (std::size_t j = 0; j < ns; ++j) {
      stats_.rows_requested += union_locals_[j].size();
      if (j == self || union_locals_[j].empty()) continue;
      resolve_remote_shard(j, plan);
    }
    remote_us += wall.micros();
  }

  const auto wait_all = [&] {
    ScopedPhase phase(t, Phase::kRemoteFetch);
    WallTimer wall;
    for (std::size_t j = 0; j < ns; ++j) {
      // Decode into the round-recycled batch so steady-state rounds reuse
      // its vectors' capacity instead of allocating fresh arrays.
      if (fetches_[j].valid()) fetches_[j].wait_into(batches_[j]);
    }
    remote_us += wall.micros();
  };
  // No-overlap mode waits before any local work, so the remote-fetch
  // phase is fully exposed in the breakdown (the Table-3 contrast).
  if (!plan.overlap) wait_all();

  // --- Resolve the self-shard union through shared memory. --------------
  if (!union_locals_[self].empty()) {
    ScopedPhase phase(t, Phase::kLocalFetch);
    WallTimer wall;
    if (snapshot_ != nullptr) {
      // Versioned self-shard: the pinned snapshot serves (clean shards
      // delegate straight to the base CSR — same views, same bytes).
      resolved_[self] = snapshot_->get_neighbor_infos(union_locals_[self]);
      storage_.stats().local_nodes.fetch_add(union_locals_[self].size(),
                                             std::memory_order_relaxed);
    } else {
      resolved_[self] =
          storage_.get_neighbor_infos_local(union_locals_[self]);
    }
    sources_[self].assign(resolved_[self].size(), RowSource::kLocal);
    stats_.rows_local += resolved_[self].size();
    phase_histogram(Phase::kLocalFetch).record(wall.micros());
  }

  // --- Overlap hook: caller's local work runs while responses fly. ------
  if (local_work) local_work();

  if (plan.overlap) wait_all();

  // --- Fan responses into their union rows; feed the adjacency cache. ---
  for (std::size_t j = 0; j < ns; ++j) {
    if (fetch_locals_[j].empty()) continue;
    // Weightless rows (need_weights off) carry zero-filled float arrays;
    // caching them would poison weight-consuming queries.
    if (batches_[j].has_weights()) {
      storage_.insert_adjacency_rows(static_cast<ShardId>(j),
                                     fetch_locals_[j], batches_[j], pin_);
    }
    for (std::size_t m = 0; m < fetch_rows_[j].size(); ++m) {
      resolved_[j][fetch_rows_[j][m]] = batches_[j][m];
    }
  }
  phase_histogram(Phase::kRemoteFetch).record(remote_us);
}

}  // namespace ppr
