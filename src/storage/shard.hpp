// Graph Shard: the per-machine storage unit of §3.2.
//
// After partitioning, each shard stores a CSR whose rows are its *core
// nodes* (the vertex set METIS assigned to it) and whose columns range
// over core ∪ 1-hop *halo* nodes. Every column endpoint is identified by
// a <local id, shard id> pair, never a global id, so traversal dispatches
// by shard id and indexes by local id directly. Each edge also carries the
// neighbor's *weighted degree* so Forward Push threshold checks
// (r(u) > ε·d_w(u)) never require a remote aggregate.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/serialize.hpp"
#include "concurrent/flat_map.hpp"
#include "graph/graph.hpp"
#include "partition/partitioner.hpp"

namespace ppr {

using ShardId = std::int32_t;

/// Array encoding of the CSR-compressed neighbor response (§3.2.3
/// "Compress" decides *whether* to ship CSR; the codec decides *how*).
enum class WireCodec : std::uint8_t {
  /// Full-width length-prefixed arrays — the historic flat encoding.
  kFlat = 0,
  /// Row offsets shipped as per-row degree varints; neighbor global ids
  /// delta-encoded within each (sorted) row and LEB128-packed, local and
  /// shard ids varint-packed. Floats stay raw. Typically 35-60% smaller
  /// on the wire; decodes to bit-identical arrays.
  kDeltaVarint = 1,
};

inline const char* wire_codec_name(WireCodec c) {
  return c == WireCodec::kDeltaVarint ? "varint" : "flat";
}

/// Graph-version sentinel: "serve the newest applied version". Requests
/// carrying it go on the wire as legacy (unversioned) storage frames —
/// byte-identical to the pre-versioning protocol — so a never-mutated
/// deployment pays nothing for the versioned storage plane. Distinct from
/// the ROUTING epoch (ShardMap): the routing epoch versions *placement*,
/// the graph version versions *data* (DESIGN.md §15 glossary).
inline constexpr std::uint64_t kVersionLatest = ~std::uint64_t{0};

/// Per-fetch wire options, next to the pre-existing `compress` knob. The
/// response frame self-describes its codec, so decoders never need these.
struct FetchOptions {
  /// CSR response (a few flat arrays) vs per-node tensor list (§3.2.3).
  bool compress = true;
  /// Array encoding of the CSR response; ignored for tensor lists.
  WireCodec codec = WireCodec::kFlat;
  /// When false the edge-weight / weighted-degree floats are dropped from
  /// the frame entirely (decoded as zeros) — for callers like BFS that
  /// only consume neighbor ids. Weightless rows are never fed into the
  /// adjacency cache (the cache must stay fit for weight-consuming
  /// queries).
  bool need_weights = true;
  /// Pinned graph version the response must be assembled at; the
  /// kVersionLatest sentinel means "newest applied" and keeps the request
  /// frame in the legacy (unversioned) layout.
  std::uint64_t graph_version = kVersionLatest;
};

/// A node reference: local id within a shard + the shard id.
struct NodeRef {
  NodeId local = 0;
  ShardId shard = 0;

  /// Pack into a 64-bit hashmap key (both components are non-negative, so
  /// the packed key can never collide with the map's kEmptyKey sentinel).
  std::uint64_t key() const {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(shard))
            << 32) |
           static_cast<std::uint32_t>(local);
  }
  static NodeRef from_key(std::uint64_t k) {
    return NodeRef{static_cast<NodeId>(k & 0xffffffffULL),
                   static_cast<ShardId>(k >> 32)};
  }
  bool operator==(const NodeRef&) const = default;
};

/// One row of an encodable row set: raw pointers + length + the source
/// node's weighted degree. The versioned store (versioned_shard.hpp) hands
/// merged base+delta rows to encode_rows_csr() through this view, so
/// mutated rows ship with the exact byte layout of the immutable CSR path.
struct RowPtrs {
  const NodeId* nbr_local = nullptr;
  const ShardId* nbr_shard = nullptr;
  const float* weights = nullptr;
  const float* nbr_dw = nullptr;
  const NodeId* nbr_global = nullptr;
  std::size_t len = 0;
  float src_dw = 0;
};

/// Zero-copy view of one core node's neighborhood inside a shard (or
/// inside a decoded remote response — the two share this API, which is
/// what makes the CSR-compressed response directly consumable).
struct VertexProp {
  std::span<const NodeId> nbr_local_ids;
  std::span<const ShardId> nbr_shard_ids;
  std::span<const float> edge_weights;
  std::span<const float> nbr_weighted_degrees;
  /// Original graph ids of the neighbors. Carried through every resolution
  /// path (shard, halo cache, adjacency cache, wire) so client-side
  /// samplers (random walk) can emit global ids without a second lookup.
  std::span<const NodeId> nbr_global_ids;
  float weighted_degree = 0;  // d_w of the source node itself

  std::size_t degree() const { return nbr_local_ids.size(); }
};

/// Maps original graph node ids to <shard, local> and back. Built once
/// from the partition assignment; shared by all shards of a simulation.
class GlobalMapping {
 public:
  GlobalMapping() = default;
  GlobalMapping(const PartitionAssignment& assignment, int num_shards);

  int num_shards() const { return static_cast<int>(core_globals_.size()); }
  NodeRef to_ref(NodeId global) const {
    return NodeRef{local_of_[static_cast<std::size_t>(global)],
                   shard_of_[static_cast<std::size_t>(global)]};
  }
  NodeId to_global(NodeRef ref) const {
    return core_globals_[static_cast<std::size_t>(ref.shard)]
                        [static_cast<std::size_t>(ref.local)];
  }
  NodeId num_core_nodes(ShardId shard) const {
    return static_cast<NodeId>(
        core_globals_[static_cast<std::size_t>(shard)].size());
  }
  std::span<const NodeId> core_globals(ShardId shard) const {
    return core_globals_[static_cast<std::size_t>(shard)];
  }

 private:
  std::vector<ShardId> shard_of_;
  std::vector<NodeId> local_of_;
  std::vector<std::vector<NodeId>> core_globals_;
};

/// Immutable per-machine graph partition in the core/halo CSR layout.
class GraphShard {
 public:
  /// Build shard `shard_id` of `g` under `mapping`. With
  /// `cache_halo_adjacency`, the shard additionally stores the full
  /// neighbor rows of its 1-hop halo nodes — the "higher hop value"
  /// direction of §3.2.1: more memory, fewer remote fetches (every
  /// first-hop remote access of a query rooted in this shard becomes
  /// local).
  GraphShard(const Graph& g, const GlobalMapping& mapping, ShardId shard_id,
             bool cache_halo_adjacency = false);

  bool has_halo_cache() const { return halo_cache_enabled_; }
  NodeId num_halo_rows() const {
    return static_cast<NodeId>(halo_row_of_.size());
  }

  /// Neighborhood view of a cached halo node, or nullopt if `ref` is not
  /// in this shard's halo cache. `ref` must belong to another shard.
  std::optional<VertexProp> halo_vertex_prop(NodeRef ref) const;

  ShardId shard_id() const { return shard_id_; }
  NodeId num_core_nodes() const {
    return static_cast<NodeId>(indptr_.size() - 1);
  }
  EdgeIndex num_stored_edges() const {
    return static_cast<EdgeIndex>(nbr_local_ids_.size());
  }
  NodeId core_global_id(NodeId local) const {
    return core_global_ids_[static_cast<std::size_t>(local)];
  }
  float core_weighted_degree(NodeId local) const {
    return core_weighted_deg_[static_cast<std::size_t>(local)];
  }

  /// Zero-copy neighborhood view for one core node.
  VertexProp vertex_prop(NodeId local) const;

  /// Zero-copy views for a batch of core nodes (the shared-memory local
  /// fetch path: no serialization, no copies).
  std::vector<VertexProp> get_neighbor_infos(
      std::span<const NodeId> locals) const;

  /// Global id of the k-th stored neighbor of `local`.
  NodeId nbr_global_id(NodeId local, std::size_t k) const;

  /// Weighted sampling of one outgoing neighbor per source node.
  /// Returns (local ids, shard ids, global ids) of the samples.
  void sample_one_neighbor(std::span<const NodeId> locals, std::uint64_t seed,
                           std::vector<NodeId>& out_local,
                           std::vector<ShardId>& out_shard,
                           std::vector<NodeId>& out_global) const;

  /// GraphSAGE-style fan-out sampling: for each source, up to `k`
  /// distinct neighbors drawn uniformly without replacement (all of them
  /// when degree ≤ k). Results are CSR-shaped: `out_indptr[i]` delimits
  /// source i's samples.
  void sample_k_neighbors(std::span<const NodeId> locals, int k,
                          std::uint64_t seed,
                          std::vector<EdgeIndex>& out_indptr,
                          std::vector<NodeId>& out_local,
                          std::vector<ShardId>& out_shard,
                          std::vector<NodeId>& out_global) const;

  /// Serialize neighbor info for `locals` as one CSR-compressed response:
  /// a self-describing frame of either full-width flat arrays or the
  /// delta-varint packing, per `options.codec` (the "+Compress" wire
  /// format of §3.2.3; see DESIGN.md §10 for the frame layout).
  void encode_neighbor_infos_csr(std::span<const NodeId> locals,
                                 ByteWriter& w,
                                 const FetchOptions& options = {}) const;

  /// Serialize the same data as a list of per-node tensor-wrapped arrays
  /// (4 small tensors per source node) — the uncompressed baseline format.
  void encode_neighbor_infos_tensor_list(std::span<const NodeId> locals,
                                         ByteWriter& w) const;

  /// Raw array access (used by shard IO and tests).
  const std::vector<EdgeIndex>& indptr() const { return indptr_; }
  const std::vector<NodeId>& nbr_local_ids() const { return nbr_local_ids_; }
  const std::vector<ShardId>& nbr_shard_ids() const { return nbr_shard_ids_; }
  const std::vector<float>& edge_weights() const { return edge_weights_; }
  const std::vector<float>& nbr_weighted_degrees() const {
    return nbr_weighted_deg_;
  }

  /// Approximate resident bytes of the shard arrays.
  std::size_t memory_bytes() const;

  /// Full-state serialization for live migration (DESIGN.md §13): every
  /// CSR array plus the halo-adjacency cache, bit-exactly. deserialize()
  /// reconstructs a shard that answers every query identically to the
  /// original — the property the migration bit-identity tests pin down.
  void serialize(ByteWriter& w) const;
  static std::shared_ptr<GraphShard> deserialize(ByteReader& r);

 private:
  GraphShard() = default;  // deserialize() fills every field

  /// Pointer view of one core row (feeds the shared row-set encoders).
  RowPtrs row_ptrs(NodeId local) const;

  // Compaction (versioned_shard.cpp) materializes a fresh base CSR from
  // merged base+delta rows through the private default ctor.
  friend class VersionedShardStore;

  ShardId shard_id_ = 0;
  std::vector<EdgeIndex> indptr_;          // per core node
  std::vector<NodeId> core_global_ids_;    // local -> original global id
  std::vector<float> core_weighted_deg_;   // d_w of each core node
  // Per-edge arrays (the five arrays of §3.2.2, plus neighbor global ids
  // to support random-walk summaries).
  std::vector<NodeId> nbr_local_ids_;
  std::vector<ShardId> nbr_shard_ids_;
  std::vector<float> edge_weights_;
  std::vector<float> nbr_weighted_deg_;
  std::vector<NodeId> nbr_global_ids_;

  // Optional halo-adjacency cache: one CSR row per 1-hop halo node,
  // indexed by packed NodeRef key.
  bool halo_cache_enabled_ = false;
  FlatMap<std::uint32_t> halo_row_of_;
  std::vector<EdgeIndex> halo_indptr_;
  std::vector<float> halo_weighted_deg_;
  std::vector<NodeId> halo_nbr_local_ids_;
  std::vector<ShardId> halo_nbr_shard_ids_;
  std::vector<float> halo_edge_weights_;
  std::vector<float> halo_nbr_weighted_deg_;
  std::vector<NodeId> halo_nbr_global_ids_;
};

/// Encode an arbitrary row set (e.g. snapshot-merged base+delta rows) as a
/// CSR-compressed response. Shares the exact encoder the GraphShard member
/// functions use, so a clean row and a merged row with the same contents
/// produce the same bytes.
void encode_rows_csr(std::span<const RowPtrs> rows, ByteWriter& w,
                     const FetchOptions& options = {});

/// Tensor-list counterpart of encode_rows_csr().
void encode_rows_tensor_list(std::span<const RowPtrs> rows, ByteWriter& w);

/// Decoded remote neighbor-info response. Owns its arrays; exposes the
/// same VertexProp views as GraphShard so the push operator consumes local
/// and remote data identically.
class NeighborBatch {
 public:
  NeighborBatch() = default;

  /// Decode a CSR-compressed response of either codec (the frame's tag
  /// byte says which). Malformed frames — truncated sections, overlong
  /// varints, inconsistent offsets, out-of-range ids — are rejected with
  /// GE_REQUIRE, never undefined behaviour.
  static NeighborBatch decode_csr(ByteReader& r);
  /// Same, decoding into `out` so its vectors' capacity is reused —
  /// steady-state rounds of the fetch pipeline decode with zero
  /// allocations once warm.
  static void decode_csr_into(ByteReader& r, NeighborBatch& out);
  /// Decode a tensor-list response for `num_nodes` source nodes.
  static NeighborBatch decode_tensor_list(ByteReader& r);

  std::size_t size() const { return src_weighted_deg_.size(); }
  VertexProp operator[](std::size_t i) const;

  /// False when the frame was encoded with need_weights off: the weight /
  /// degree arrays are zero-filled placeholders and the rows must not be
  /// fed into the adjacency cache.
  bool has_weights() const { return has_weights_; }

 private:
  std::vector<EdgeIndex> indptr_;
  std::vector<NodeId> nbr_local_ids_;
  std::vector<ShardId> nbr_shard_ids_;
  std::vector<float> edge_weights_;
  std::vector<float> nbr_weighted_deg_;
  std::vector<NodeId> nbr_global_ids_;
  std::vector<float> src_weighted_deg_;
  bool has_weights_ = true;
};

/// Build every shard of `g` for `num_shards` partitions.
/// Convenience used by the cluster bootstrap and tests.
struct ShardedGraph {
  GlobalMapping mapping;
  std::vector<std::shared_ptr<const GraphShard>> shards;
};
ShardedGraph build_sharded_graph(const Graph& g,
                                 const PartitionAssignment& assignment,
                                 int num_shards,
                                 bool cache_halo_adjacency = false);

}  // namespace ppr
