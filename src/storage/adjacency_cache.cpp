#include "storage/adjacency_cache.hpp"

namespace ppr {

AdjacencyCache::AdjacencyCache(std::size_t capacity_rows, ShardId shard)
    : stats_(shard) {
  GE_REQUIRE(capacity_rows > 0, "adjacency cache needs capacity > 0");
  slots_.resize(capacity_rows);
  index_.reserve(capacity_rows * 2);
  if (shard >= 0) {
    resident_reg_ = obs::MetricRegistry::global().attach(
        "storage.adjacency_cache.resident_rows",
        {{"shard", std::to_string(shard)}}, resident_rows_);
  }
}

std::size_t AdjacencyCache::size() const {
  LockGuard<Spinlock> guard(lock_);
  return used_slots_;
}

void AdjacencyCache::lookup(ShardId dst, std::span<const NodeId> locals,
                            CachedRowArena& arena,
                            std::vector<std::size_t>& hit_indices,
                            std::vector<std::size_t>& hit_rows,
                            std::vector<NodeId>& miss_locals,
                            std::vector<std::size_t>& miss_indices,
                            std::uint64_t shard_last_mut,
                            std::uint64_t graph_version) {
  hit_indices.clear();
  hit_rows.clear();
  miss_locals.clear();
  miss_indices.clear();
  if (locals.empty()) return;

  std::size_t hits = 0;
  std::size_t invalidated = 0;
  {
    LockGuard<Spinlock> guard(lock_);
    for (std::size_t i = 0; i < locals.size(); ++i) {
      const std::uint64_t key = NodeRef{locals[i], dst}.key();
      const auto it = index_.find(key);
      if (it == index_.end()) {
        miss_locals.push_back(locals[i]);
        miss_indices.push_back(i);
        continue;
      }
      Slot& slot = slots_[it->second];
      if (slot.version_tag != shard_last_mut) {
        // Filled before the shard's latest mutation: drop the entry so
        // the refill caches current data. The slot itself waits for the
        // CLOCK hand (referenced stays clear so it goes first).
        slot.used = false;
        slot.referenced = 0;
        index_.erase(it);
        ++invalidated;
        miss_locals.push_back(locals[i]);
        miss_indices.push_back(i);
        continue;
      }
      if (graph_version != kVersionLatest &&
          graph_version < shard_last_mut) {
        // The entry is current but this reader is pinned before the
        // shard's last mutation — it must read through a snapshot. Keep
        // the entry: it is still right for readers at ≥ shard_last_mut.
        miss_locals.push_back(locals[i]);
        miss_indices.push_back(i);
        continue;
      }
      if (graph_version == kVersionLatest && shard_last_mut != 0) {
        // Unpinned reader on a mutated shard (defensive: the drivers
        // resolve their pin before fetching) — serve via snapshot.
        miss_locals.push_back(locals[i]);
        miss_indices.push_back(i);
        continue;
      }
      slot.referenced = 1;
      hit_indices.push_back(i);
      hit_rows.push_back(arena.append_row(
          slot.nbr_local_ids, slot.nbr_shard_ids, slot.edge_weights,
          slot.nbr_weighted_deg, slot.nbr_global_ids,
          slot.weighted_degree));
      ++hits;
    }
  }
  stats_.hits.fetch_add(hits, std::memory_order_relaxed);
  stats_.misses.fetch_add(locals.size() - hits, std::memory_order_relaxed);
  if (invalidated != 0) {
    stats_.version_invalidations.fetch_add(invalidated,
                                           std::memory_order_relaxed);
  }
}

std::size_t AdjacencyCache::victim_slot() {
  if (used_slots_ < slots_.size()) return used_slots_++;
  for (;;) {
    Slot& slot = slots_[hand_];
    const std::size_t idx = hand_;
    hand_ = (hand_ + 1) % slots_.size();
    if (slot.referenced) {
      slot.referenced = 0;
      continue;
    }
    index_.erase(slot.key);
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    return idx;
  }
}

void AdjacencyCache::insert(ShardId dst, NodeId local,
                            const VertexProp& row,
                            std::uint64_t shard_last_mut,
                            std::uint64_t graph_version) {
  // A row fetched through a pin OLDER than the shard's last mutation may
  // already be stale at the newest version — don't cache it. (Unpinned
  // fetches on a mutated shard are equally unattributable; skip those
  // too. Both only arise transiently around pin resolution.)
  if (graph_version == kVersionLatest ? shard_last_mut != 0
                                      : graph_version < shard_last_mut) {
    return;
  }
  const std::uint64_t key = NodeRef{local, dst}.key();
  LockGuard<Spinlock> guard(lock_);
  const auto it = index_.find(key);
  if (it != index_.end() &&
      slots_[it->second].version_tag == shard_last_mut) {
    slots_[it->second].referenced = 1;
    return;
  }
  // Resident but version-stale: refill the same slot with current data.
  const std::size_t idx = it != index_.end() ? it->second : victim_slot();
  Slot& slot = slots_[idx];
  slot.key = key;
  slot.used = true;
  slot.referenced = 1;
  slot.version_tag = shard_last_mut;
  slot.weighted_degree = row.weighted_degree;
  slot.nbr_local_ids.assign(row.nbr_local_ids.begin(),
                            row.nbr_local_ids.end());
  slot.nbr_shard_ids.assign(row.nbr_shard_ids.begin(),
                            row.nbr_shard_ids.end());
  slot.edge_weights.assign(row.edge_weights.begin(), row.edge_weights.end());
  slot.nbr_weighted_deg.assign(row.nbr_weighted_degrees.begin(),
                               row.nbr_weighted_degrees.end());
  slot.nbr_global_ids.assign(row.nbr_global_ids.begin(),
                             row.nbr_global_ids.end());
  index_[key] = static_cast<std::uint32_t>(idx);
  stats_.insertions.fetch_add(1, std::memory_order_relaxed);
  resident_rows_.set(static_cast<std::int64_t>(used_slots_));
}

}  // namespace ppr
