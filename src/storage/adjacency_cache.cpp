#include "storage/adjacency_cache.hpp"

namespace ppr {

AdjacencyCache::AdjacencyCache(std::size_t capacity_rows, ShardId shard)
    : stats_(shard) {
  GE_REQUIRE(capacity_rows > 0, "adjacency cache needs capacity > 0");
  slots_.resize(capacity_rows);
  index_.reserve(capacity_rows * 2);
  if (shard >= 0) {
    resident_reg_ = obs::MetricRegistry::global().attach(
        "storage.adjacency_cache.resident_rows",
        {{"shard", std::to_string(shard)}}, resident_rows_);
  }
}

std::size_t AdjacencyCache::size() const {
  LockGuard<Spinlock> guard(lock_);
  return used_slots_;
}

void AdjacencyCache::lookup(ShardId dst, std::span<const NodeId> locals,
                            CachedRowArena& arena,
                            std::vector<std::size_t>& hit_indices,
                            std::vector<std::size_t>& hit_rows,
                            std::vector<NodeId>& miss_locals,
                            std::vector<std::size_t>& miss_indices) {
  hit_indices.clear();
  hit_rows.clear();
  miss_locals.clear();
  miss_indices.clear();
  if (locals.empty()) return;

  std::size_t hits = 0;
  {
    LockGuard<Spinlock> guard(lock_);
    for (std::size_t i = 0; i < locals.size(); ++i) {
      const std::uint64_t key = NodeRef{locals[i], dst}.key();
      const auto it = index_.find(key);
      if (it == index_.end()) {
        miss_locals.push_back(locals[i]);
        miss_indices.push_back(i);
        continue;
      }
      Slot& slot = slots_[it->second];
      slot.referenced = 1;
      hit_indices.push_back(i);
      hit_rows.push_back(arena.append_row(
          slot.nbr_local_ids, slot.nbr_shard_ids, slot.edge_weights,
          slot.nbr_weighted_deg, slot.nbr_global_ids,
          slot.weighted_degree));
      ++hits;
    }
  }
  stats_.hits.fetch_add(hits, std::memory_order_relaxed);
  stats_.misses.fetch_add(locals.size() - hits, std::memory_order_relaxed);
}

std::size_t AdjacencyCache::victim_slot() {
  if (used_slots_ < slots_.size()) return used_slots_++;
  for (;;) {
    Slot& slot = slots_[hand_];
    const std::size_t idx = hand_;
    hand_ = (hand_ + 1) % slots_.size();
    if (slot.referenced) {
      slot.referenced = 0;
      continue;
    }
    index_.erase(slot.key);
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    return idx;
  }
}

void AdjacencyCache::insert(ShardId dst, NodeId local,
                            const VertexProp& row) {
  const std::uint64_t key = NodeRef{local, dst}.key();
  LockGuard<Spinlock> guard(lock_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    slots_[it->second].referenced = 1;
    return;
  }
  const std::size_t idx = victim_slot();
  Slot& slot = slots_[idx];
  slot.key = key;
  slot.used = true;
  slot.referenced = 1;
  slot.weighted_degree = row.weighted_degree;
  slot.nbr_local_ids.assign(row.nbr_local_ids.begin(),
                            row.nbr_local_ids.end());
  slot.nbr_shard_ids.assign(row.nbr_shard_ids.begin(),
                            row.nbr_shard_ids.end());
  slot.edge_weights.assign(row.edge_weights.begin(), row.edge_weights.end());
  slot.nbr_weighted_deg.assign(row.nbr_weighted_degrees.begin(),
                               row.nbr_weighted_degrees.end());
  slot.nbr_global_ids.assign(row.nbr_global_ids.begin(),
                             row.nbr_global_ids.end());
  index_[key] = static_cast<std::uint32_t>(idx);
  stats_.insertions.fetch_add(1, std::memory_order_relaxed);
  resident_rows_.set(static_cast<std::int64_t>(used_slots_));
}

}  // namespace ppr
