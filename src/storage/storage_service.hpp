// Server side of the Distributed Graph Storage: registers the local shard
// as an RPC service ("storage") so peers can fetch neighbor information.
// One instance runs per machine, playing the role of the paper's dedicated
// Graph Storage server process.
#pragma once

#include <memory>
#include <string>

#include "rpc/endpoint.hpp"
#include "storage/shard.hpp"

namespace ppr {

/// Method names understood by the storage service.
namespace storage_method {
inline constexpr const char* kGetNeighborInfos = "get_neighbor_infos";
inline constexpr const char* kGetNeighborInfoSingle =
    "get_neighbor_info_single";
inline constexpr const char* kSampleOneNeighbor = "sample_one_neighbor";
inline constexpr const char* kSampleKNeighbors = "sample_k_neighbors";
inline constexpr const char* kNumCoreNodes = "num_core_nodes";
}  // namespace storage_method

inline constexpr const char* kStorageServiceName = "storage";

/// Flag bits of the kGetNeighborInfos request's leading byte (the wire
/// form of FetchOptions). Historic requests carried `u8 compress` alone,
/// so bit 0 keeps that meaning and the new bits extend it compatibly.
inline constexpr std::uint8_t kFetchFlagCompress = 0x01;
inline constexpr std::uint8_t kFetchFlagVarint = 0x02;
inline constexpr std::uint8_t kFetchFlagNoWeights = 0x04;

/// Decode the request flag byte back into FetchOptions.
inline FetchOptions fetch_options_from_flags(std::uint8_t flags) {
  FetchOptions options;
  options.compress = (flags & kFetchFlagCompress) != 0;
  options.codec = (flags & kFetchFlagVarint) != 0 ? WireCodec::kDeltaVarint
                                                  : WireCodec::kFlat;
  options.need_weights = (flags & kFetchFlagNoWeights) == 0;
  return options;
}

class GraphStorageService {
 public:
  /// Registers the service on `endpoint` under kStorageServiceName.
  GraphStorageService(RpcEndpoint& endpoint,
                      std::shared_ptr<const GraphShard> shard);

  const GraphShard& shard() const { return *shard_; }

 private:
  std::vector<std::uint8_t> handle(const std::string& method,
                                   std::span<const std::uint8_t> payload);

  std::shared_ptr<const GraphShard> shard_;
};

}  // namespace ppr
