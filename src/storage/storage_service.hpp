// Server side of the Distributed Graph Storage: registers the locally
// installed shards as an RPC service ("storage") so peers can fetch
// neighbor information. One instance runs per machine, playing the role
// of the paper's dedicated Graph Storage server process.
//
// Elastic shard plane (DESIGN.md §13): the service holds a SET of shards
// — migration installs and removes them at runtime. Every request opens
// with a [shard id, routing epoch] header; if the shard is installed the
// request is served regardless of the caller's ROUTING epoch (placement
// version — serving from a "stale" route is still correct because reads
// are pinned by GRAPH version, not by where the shard lives), otherwise
// the reply is a stale-route redirect carrying this node's current
// ShardMap so the caller can re-resolve and retry without a coordinator
// round.
//
// Versioned storage plane (DESIGN.md §15): each installed shard is a
// VersionedShardStore. Read requests may carry a pinned graph version
// (wire v3 header, backward compatible — legacy frames read as "newest");
// every read method serves through one ShardSnapshot, so a reply never
// mixes two versions even while MutateEdges RPCs land concurrently.
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "cluster/routing.hpp"
#include "rpc/endpoint.hpp"
#include "storage/shard.hpp"
#include "storage/versioned_shard.hpp"

namespace ppr {

/// Method names understood by the storage service.
namespace storage_method {
inline constexpr const char* kGetNeighborInfos = "get_neighbor_infos";
inline constexpr const char* kGetNeighborInfoSingle =
    "get_neighbor_info_single";
inline constexpr const char* kSampleOneNeighbor = "sample_one_neighbor";
inline constexpr const char* kSampleKNeighbors = "sample_k_neighbors";
inline constexpr const char* kNumCoreNodes = "num_core_nodes";
/// Full store snapshot (VersionedShardStore::serialize: base CSR +
/// pending delta segments) — the migration / replica-bootstrap copy.
inline constexpr const char* kSnapshotShard = "snapshot_shard";
/// Apply one MutationBatch at an explicit graph version (DESIGN.md §15).
/// Routed by the mutation coordinator to the shard owner and every
/// replica in version order.
inline constexpr const char* kMutateEdges = "mutate_edges";
/// Weighted degrees of a batch of core nodes — the coordinator's
/// pre-mutation hint fetch (EdgeInsert::nbr_weighted_deg).
inline constexpr const char* kGetWeightedDegs = "get_weighted_degs";
}  // namespace storage_method

inline constexpr const char* kStorageServiceName = "storage";

/// Leading status byte of every storage reply.
inline constexpr std::uint8_t kStorageReplyOk = 0;
/// The requested shard is not installed here: the rest of the reply is
/// this node's current ShardMap (encoded) — re-resolve and retry.
inline constexpr std::uint8_t kStorageReplyStaleRoute = 1;

/// Every storage request opens with this header. The routing epoch sits
/// at a fixed offset so a retry can patch it in place without
/// re-encoding (the patch must preserve the versioned-flag bit below).
inline constexpr std::size_t kStorageEpochOffset = sizeof(std::int32_t);
inline constexpr std::size_t kStorageHeaderBytes =
    sizeof(std::int32_t) + sizeof(std::uint64_t);

/// Top bit of the header's routing-epoch word: the header continues with
/// a pinned graph version (u64). Legacy (wire v2) frames leave it clear
/// and decode unchanged as "serve the newest version" — so a deployment
/// that never mutates keeps emitting byte-identical request frames.
inline constexpr std::uint64_t kStorageVersionedFlag = std::uint64_t{1}
                                                      << 63;

/// Decoded request header. `routing_epoch` versions shard *placement*
/// (ShardMap); `graph_version` versions the *data* (DESIGN.md §15
/// glossary) — kVersionLatest when the frame was unversioned.
struct StorageHeader {
  ShardId shard = 0;
  std::uint64_t routing_epoch = 0;
  std::uint64_t graph_version = kVersionLatest;
  bool versioned = false;
};

inline StorageHeader read_storage_header(ByteReader& r) {
  StorageHeader h;
  h.shard = r.read<std::int32_t>();
  const auto word = r.read<std::uint64_t>();
  h.routing_epoch = word & ~kStorageVersionedFlag;
  h.versioned = (word & kStorageVersionedFlag) != 0;
  if (h.versioned) h.graph_version = r.read<std::uint64_t>();
  return h;
}

/// Legacy (unversioned) header: [shard:i32][routing epoch:u64].
inline void write_storage_header(ByteWriter& w, ShardId shard,
                                 std::uint64_t epoch) {
  w.write<std::int32_t>(shard);
  w.write<std::uint64_t>(epoch);
}

/// Versioned header: the epoch word carries kStorageVersionedFlag and a
/// pinned graph version follows. Emitted only for concrete pins.
inline void write_storage_header_versioned(ByteWriter& w, ShardId shard,
                                           std::uint64_t epoch,
                                           std::uint64_t graph_version) {
  w.write<std::int32_t>(shard);
  w.write<std::uint64_t>(epoch | kStorageVersionedFlag);
  w.write<std::uint64_t>(graph_version);
}

/// Flag bits of the kGetNeighborInfos request's flags byte (the wire
/// form of FetchOptions). Historic requests carried `u8 compress` alone,
/// so bit 0 keeps that meaning and the new bits extend it compatibly.
inline constexpr std::uint8_t kFetchFlagCompress = 0x01;
inline constexpr std::uint8_t kFetchFlagVarint = 0x02;
inline constexpr std::uint8_t kFetchFlagNoWeights = 0x04;

/// Decode the request flag byte back into FetchOptions.
inline FetchOptions fetch_options_from_flags(std::uint8_t flags) {
  FetchOptions options;
  options.compress = (flags & kFetchFlagCompress) != 0;
  options.codec = (flags & kFetchFlagVarint) != 0 ? WireCodec::kDeltaVarint
                                                  : WireCodec::kFlat;
  options.need_weights = (flags & kFetchFlagNoWeights) == 0;
  return options;
}

class GraphStorageService {
 public:
  /// Registers the service on `endpoint` under kStorageServiceName.
  /// Shards are installed afterwards (install_shard).
  GraphStorageService(RpcEndpoint& endpoint,
                      std::shared_ptr<RoutingTable> routing);

  /// Single-shard convenience (tests, in-process clusters): identity
  /// routing over the endpoint's machine count, with `shard` installed.
  GraphStorageService(RpcEndpoint& endpoint,
                      std::shared_ptr<const GraphShard> shard);

  /// Begin serving `shard`, wrapped as a pristine (version-0) store.
  /// Idempotent per shard id.
  void install_shard(std::shared_ptr<const GraphShard> shard);

  /// Begin serving a versioned store (migration adoption / replica
  /// bootstrap land here with the source's version state intact).
  void install_store(std::shared_ptr<VersionedShardStore> store);

  /// Stop serving `shard`: unlink it so new requests see a stale-route
  /// redirect, then BLOCK until every in-flight request on it drains —
  /// the migration protocol's drain step. After return the service holds
  /// no reference to the shard data.
  void remove_shard(ShardId shard);

  bool serves(ShardId shard) const;
  /// Current base CSR of the installed store (newest generation).
  std::shared_ptr<const GraphShard> shard_ptr(ShardId shard) const;
  std::shared_ptr<VersionedShardStore> store_ptr(ShardId shard) const;

  /// (shard, requests served) per installed shard — the rebalancer's
  /// per-shard traffic signal.
  std::vector<std::pair<ShardId, std::uint64_t>> served_counts() const;

  const RoutingTable& routing() const { return *routing_; }

 private:
  struct Entry {
    std::shared_ptr<VersionedShardStore> store;
    std::atomic<int> inflight{0};
    std::atomic<std::uint64_t> served{0};
  };

  std::vector<std::uint8_t> handle(const std::string& method,
                                   std::span<const std::uint8_t> payload);
  std::vector<std::uint8_t> dispatch(Entry& entry,
                                     const StorageHeader& header,
                                     const std::string& method,
                                     ByteReader& r, ByteWriter& w);
  std::vector<std::uint8_t> stale_route_reply(ByteWriter& w) const;

  std::shared_ptr<RoutingTable> routing_;
  mutable std::mutex mutex_;
  std::condition_variable drain_cv_;
  std::map<ShardId, std::shared_ptr<Entry>> shards_;
};

}  // namespace ppr
