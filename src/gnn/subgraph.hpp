// ShaDow-style mini-batch construction (§4.5): each batch root gets a
// localized subgraph induced from the nodes with the top-K PPR values,
// with features sliced from a cross-machine feature store.
#pragma once

#include <vector>

#include "gnn/matrix.hpp"
#include "ppr/ssppr_state.hpp"
#include "rpc/endpoint.hpp"
#include "storage/dist_storage.hpp"

namespace ppr::gnn {

inline constexpr const char* kFeatureServiceName = "features";

/// Server side of the cross-machine feature store: features of this
/// machine's core nodes, served over RPC by local id.
class FeatureStoreService {
 public:
  FeatureStoreService(RpcEndpoint& endpoint, Matrix features);

  const Matrix& features() const { return features_; }

 private:
  std::vector<std::uint8_t> handle(const std::string& method,
                                   std::span<const std::uint8_t> payload);
  Matrix features_;
};

/// Client side: slices feature rows for arbitrary NodeRefs, fetching
/// remote rows through RPC and local rows from shared memory.
class DistFeatureStore {
 public:
  DistFeatureStore(RpcEndpoint& endpoint, std::vector<RemoteRef> rrefs,
                   ShardId shard_id, const Matrix* local_features);

  std::size_t feature_dim() const { return local_features_->cols(); }

  /// Returns a |refs| x dim matrix with row i = features of refs[i].
  Matrix fetch(std::span<const NodeRef> refs) const;

 private:
  std::vector<RemoteRef> rrefs_;
  ShardId shard_id_;
  const Matrix* local_features_;
};

/// A PyG-Data-like induced subgraph for one mini-batch.
struct SubgraphBatch {
  std::vector<NodeRef> nodes;       // subgraph index -> node reference
  std::vector<EdgeIndex> indptr;    // CSR over subgraph indices
  std::vector<std::int32_t> adj;
  std::vector<float> edge_weights;
  Matrix x;                          // node features
  std::vector<std::int32_t> ego_idx;  // rows of the batch roots
  std::vector<std::int32_t> y;       // labels of the batch roots

  std::size_t num_nodes() const { return nodes.size(); }
  std::size_t num_edges() const { return adj.size(); }
};

/// Select the top-K nodes by PPR value from `state` (the source node is
/// always included first).
std::vector<NodeRef> topk_ppr_nodes(const SspprState& state, std::size_t k);

/// The paper's convert_batch: induce the subgraph over the union of the
/// batch roots' top-K PPR node sets, slice features, attach labels.
/// `labels[i]` must be the label of original global node i.
SubgraphBatch convert_batch(const DistGraphStorage& storage,
                            const DistFeatureStore& features,
                            const GlobalMapping& mapping,
                            std::span<const SspprState> ppr_states,
                            std::size_t k,
                            std::span<const std::int32_t> labels);

/// Deterministic synthetic node features (hash-seeded Gaussian mixture of
/// `num_classes` clusters) and matching labels — a learnable stand-in for
/// the OGB features the paper strips anyway.
Matrix make_synthetic_features(NodeId num_nodes, std::size_t dim,
                               int num_classes, std::uint64_t seed);
std::vector<std::int32_t> make_synthetic_labels(NodeId num_nodes,
                                                int num_classes,
                                                std::uint64_t seed);

}  // namespace ppr::gnn
