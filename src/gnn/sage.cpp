#include "gnn/sage.hpp"

#include <cmath>

namespace ppr::gnn {

namespace {
std::vector<float> row_weight_sums(const SubgraphBatch& g) {
  std::vector<float> sums(g.num_nodes(), 0.0f);
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    for (EdgeIndex e = g.indptr[v]; e < g.indptr[v + 1]; ++e) {
      sums[v] += g.edge_weights[static_cast<std::size_t>(e)];
    }
  }
  return sums;
}
}  // namespace

Matrix aggregate_mean(const SubgraphBatch& g, const Matrix& h) {
  GE_REQUIRE(h.rows() == g.num_nodes(), "feature row count mismatch");
  const auto sums = row_weight_sums(g);
  Matrix out(h.rows(), h.cols());
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    if (sums[v] <= 0) continue;
    float* orow = out.row(v);
    for (EdgeIndex e = g.indptr[v]; e < g.indptr[v + 1]; ++e) {
      const auto u = static_cast<std::size_t>(
          g.adj[static_cast<std::size_t>(e)]);
      const float w = g.edge_weights[static_cast<std::size_t>(e)] / sums[v];
      const float* hrow = h.row(u);
      for (std::size_t j = 0; j < h.cols(); ++j) orow[j] += w * hrow[j];
    }
  }
  return out;
}

Matrix aggregate_mean_transpose(const SubgraphBatch& g, const Matrix& grad) {
  GE_REQUIRE(grad.rows() == g.num_nodes(), "gradient row count mismatch");
  const auto sums = row_weight_sums(g);
  Matrix out(grad.rows(), grad.cols());
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    if (sums[v] <= 0) continue;
    const float* grow = grad.row(v);
    for (EdgeIndex e = g.indptr[v]; e < g.indptr[v + 1]; ++e) {
      const auto u = static_cast<std::size_t>(
          g.adj[static_cast<std::size_t>(e)]);
      const float w = g.edge_weights[static_cast<std::size_t>(e)] / sums[v];
      float* orow = out.row(u);
      for (std::size_t j = 0; j < grad.cols(); ++j) orow[j] += w * grow[j];
    }
  }
  return out;
}

SageLayer::SageLayer(std::size_t in_dim, std::size_t out_dim,
                     std::uint64_t seed)
    : w_self(Matrix::randn(in_dim, out_dim,
                           std::sqrt(2.0f / static_cast<float>(in_dim)),
                           seed)),
      w_neigh(Matrix::randn(in_dim, out_dim,
                            std::sqrt(2.0f / static_cast<float>(in_dim)),
                            seed ^ 0x1234ULL)),
      bias(out_dim, 0.0f),
      grad_w_self(in_dim, out_dim),
      grad_w_neigh(in_dim, out_dim),
      grad_bias(out_dim, 0.0f) {}

Matrix SageLayer::forward(const SubgraphBatch& g, const Matrix& input,
                          Cache& cache) const {
  cache.input = input;
  cache.aggregated = aggregate_mean(g, input);
  Matrix z = matmul(input, w_self);
  add_(z, matmul(cache.aggregated, w_neigh));
  add_bias_(z, bias);
  cache.relu_mask = relu_(z);
  return z;
}

Matrix SageLayer::backward(const SubgraphBatch& g, const Matrix& grad_out,
                           const Cache& cache) {
  Matrix gz = grad_out;
  relu_backward_(gz, cache.relu_mask);

  add_(grad_w_self, matmul_at_b(cache.input, gz));
  add_(grad_w_neigh, matmul_at_b(cache.aggregated, gz));
  for (std::size_t i = 0; i < gz.rows(); ++i) {
    const float* row = gz.row(i);
    for (std::size_t j = 0; j < gz.cols(); ++j) grad_bias[j] += row[j];
  }

  Matrix grad_in = matmul_a_bt(gz, w_self);
  const Matrix grad_agg = matmul_a_bt(gz, w_neigh);
  add_(grad_in, aggregate_mean_transpose(g, grad_agg));
  return grad_in;
}

void SageLayer::zero_grad() {
  grad_w_self.zero();
  grad_w_neigh.zero();
  std::fill(grad_bias.begin(), grad_bias.end(), 0.0f);
}

SageNet::SageNet(std::size_t in_dim, std::size_t hidden_dim, int num_classes,
                 std::uint64_t seed)
    : layer1_(in_dim, hidden_dim, seed),
      layer2_(hidden_dim, hidden_dim, seed ^ 0x5678ULL),
      w_out_(Matrix::randn(hidden_dim, static_cast<std::size_t>(num_classes),
                           std::sqrt(2.0f / static_cast<float>(hidden_dim)),
                           seed ^ 0x9abcULL)),
      b_out_(static_cast<std::size_t>(num_classes), 0.0f),
      grad_w_out_(hidden_dim, static_cast<std::size_t>(num_classes)),
      grad_b_out_(static_cast<std::size_t>(num_classes), 0.0f) {}

Matrix SageNet::forward(const SubgraphBatch& g) {
  const Matrix h1 = layer1_.forward(g, g.x, cache1_);
  h2_ = layer2_.forward(g, h1, cache2_);
  Matrix logits = matmul(h2_, w_out_);
  add_bias_(logits, b_out_);
  return logits;
}

std::pair<float, int> SageNet::backward_from_loss(const SubgraphBatch& g,
                                                  const Matrix& logits) {
  const std::size_t classes = w_out_.cols();
  const auto batch = static_cast<float>(g.ego_idx.size());
  GE_REQUIRE(!g.ego_idx.empty(), "batch has no ego nodes");

  // Softmax cross-entropy restricted to ego rows.
  Matrix grad_logits(logits.rows(), logits.cols());
  float loss = 0;
  int correct = 0;
  for (std::size_t b = 0; b < g.ego_idx.size(); ++b) {
    const auto row = static_cast<std::size_t>(g.ego_idx[b]);
    const auto label = static_cast<std::size_t>(g.y[b]);
    const float* lrow = logits.row(row);
    float maxv = lrow[0];
    std::size_t argmax = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (lrow[c] > maxv) {
        maxv = lrow[c];
        argmax = c;
      }
    }
    if (argmax == label) ++correct;
    float denom = 0;
    for (std::size_t c = 0; c < classes; ++c) {
      denom += std::exp(lrow[c] - maxv);
    }
    loss += -(lrow[label] - maxv - std::log(denom)) / batch;
    float* grow = grad_logits.row(row);
    for (std::size_t c = 0; c < classes; ++c) {
      const float p = std::exp(lrow[c] - maxv) / denom;
      grow[c] = (p - (c == label ? 1.0f : 0.0f)) / batch;
    }
  }

  add_(grad_w_out_, matmul_at_b(h2_, grad_logits));
  for (std::size_t i = 0; i < grad_logits.rows(); ++i) {
    const float* row = grad_logits.row(i);
    for (std::size_t j = 0; j < classes; ++j) grad_b_out_[j] += row[j];
  }
  const Matrix grad_h2 = matmul_a_bt(grad_logits, w_out_);
  const Matrix grad_h1 = layer2_.backward(g, grad_h2, cache2_);
  layer1_.backward(g, grad_h1, cache1_);
  return {loss, correct};
}

void SageNet::zero_grad() {
  layer1_.zero_grad();
  layer2_.zero_grad();
  grad_w_out_.zero();
  std::fill(grad_b_out_.begin(), grad_b_out_.end(), 0.0f);
}

std::vector<Matrix*> SageNet::parameters() {
  return {&layer1_.w_self, &layer1_.w_neigh, &layer2_.w_self,
          &layer2_.w_neigh, &w_out_};
}
std::vector<Matrix*> SageNet::gradients() {
  return {&layer1_.grad_w_self, &layer1_.grad_w_neigh, &layer2_.grad_w_self,
          &layer2_.grad_w_neigh, &grad_w_out_};
}
std::vector<std::vector<float>*> SageNet::bias_parameters() {
  return {&layer1_.bias, &layer2_.bias, &b_out_};
}
std::vector<std::vector<float>*> SageNet::bias_gradients() {
  return {&layer1_.grad_bias, &layer2_.grad_bias, &grad_b_out_};
}

}  // namespace ppr::gnn
