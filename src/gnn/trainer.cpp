#include "gnn/trainer.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "engine/ssppr_driver.hpp"

namespace ppr::gnn {

Adam::Adam(std::vector<Matrix*> params,
           std::vector<std::vector<float>*> biases, float lr, float beta1,
           float beta2, float eps)
    : params_(std::move(params)),
      biases_(std::move(biases)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  for (const Matrix* p : params_) {
    m_.emplace_back(p->rows(), p->cols());
    v_.emplace_back(p->rows(), p->cols());
  }
  for (const std::vector<float>* b : biases_) {
    mb_.emplace_back(b->size(), 0.0f);
    vb_.emplace_back(b->size(), 0.0f);
  }
}

void Adam::step(const std::vector<Matrix*>& grads,
                const std::vector<std::vector<float>*>& bias_grads) {
  GE_REQUIRE(grads.size() == params_.size(), "gradient count mismatch");
  GE_REQUIRE(bias_grads.size() == biases_.size(), "bias count mismatch");
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t p = 0; p < params_.size(); ++p) {
    Matrix& w = *params_[p];
    const Matrix& g = *grads[p];
    for (std::size_t i = 0; i < w.rows() * w.cols(); ++i) {
      const float gi = g.data()[i];
      float& mi = m_[p].data()[i];
      float& vi = v_[p].data()[i];
      mi = beta1_ * mi + (1 - beta1_) * gi;
      vi = beta2_ * vi + (1 - beta2_) * gi * gi;
      w.data()[i] -= lr_ * (mi / bc1) / (std::sqrt(vi / bc2) + eps_);
    }
  }
  for (std::size_t p = 0; p < biases_.size(); ++p) {
    std::vector<float>& b = *biases_[p];
    const std::vector<float>& g = *bias_grads[p];
    for (std::size_t i = 0; i < b.size(); ++i) {
      float& mi = mb_[p][i];
      float& vi = vb_[p][i];
      mi = beta1_ * mi + (1 - beta1_) * g[i];
      vi = beta2_ * vi + (1 - beta2_) * g[i] * g[i];
      b[i] -= lr_ * (mi / bc1) / (std::sqrt(vi / bc2) + eps_);
    }
  }
}

TrainReport train_distributed(Cluster& cluster, const TrainOptions& options) {
  const int machines = cluster.num_machines();
  const NodeId num_nodes = cluster.num_nodes();

  // Shared synthetic features/labels (same seed -> labels match clusters).
  const Matrix all_features = make_synthetic_features(
      num_nodes, options.feature_dim, options.num_classes, options.seed);
  const std::vector<std::int32_t> labels = make_synthetic_labels(
      num_nodes, options.num_classes, options.seed);

  // Per-machine feature stores: each machine serves its own core nodes.
  std::vector<std::unique_ptr<FeatureStoreService>> services;
  std::vector<std::unique_ptr<DistFeatureStore>> stores;
  for (int m = 0; m < machines; ++m) {
    const GraphShard& shard = cluster.shard(m);
    Matrix local(static_cast<std::size_t>(shard.num_core_nodes()),
                 options.feature_dim);
    for (NodeId l = 0; l < shard.num_core_nodes(); ++l) {
      std::copy_n(all_features.row(static_cast<std::size_t>(
                      shard.core_global_id(l))),
                  options.feature_dim, local.row(static_cast<std::size_t>(l)));
    }
    services.push_back(std::make_unique<FeatureStoreService>(
        cluster.endpoint(m), std::move(local)));
  }
  for (int m = 0; m < machines; ++m) {
    std::vector<RemoteRef> rrefs;
    for (int peer = 0; peer < machines; ++peer) {
      rrefs.emplace_back(&cluster.endpoint(m), peer, kFeatureServiceName);
    }
    stores.push_back(std::make_unique<DistFeatureStore>(
        cluster.endpoint(m), std::move(rrefs), m,
        &services[static_cast<std::size_t>(m)]->features()));
  }

  // Identically seeded replicas (DistributedDataParallel keeps replicas in
  // sync by broadcasting once and averaging gradients thereafter).
  std::vector<std::unique_ptr<SageNet>> replicas;
  std::vector<std::unique_ptr<Adam>> optimizers;
  for (int m = 0; m < machines; ++m) {
    replicas.push_back(std::make_unique<SageNet>(
        options.feature_dim, options.hidden_dim, options.num_classes,
        options.seed));
    optimizers.push_back(std::make_unique<Adam>(
        replicas.back()->parameters(), replicas.back()->bias_parameters(),
        options.lr));
  }

  TrainReport report;
  Rng batch_rng(options.seed ^ 0xba7c4e5ULL);
  for (int epoch = 0; epoch < options.num_epochs; ++epoch) {
    float epoch_loss = 0;
    int epoch_correct = 0;
    int epoch_examples = 0;
    for (int step = 0; step < options.steps_per_epoch; ++step) {
      std::vector<float> losses(static_cast<std::size_t>(machines), 0.0f);
      std::vector<int> corrects(static_cast<std::size_t>(machines), 0);
      std::vector<std::uint64_t> seeds(static_cast<std::size_t>(machines));
      for (auto& s : seeds) s = batch_rng();

      // Each machine trains on a batch of its own core nodes in parallel.
      parallel_for_threads(
          static_cast<std::size_t>(machines),
          static_cast<std::size_t>(machines), [&](std::size_t m) {
            Rng rng(seeds[m]);
            const GraphShard& shard = cluster.shard(static_cast<int>(m));
            std::vector<SspprState> states;
            states.reserve(static_cast<std::size_t>(options.batch_size));
            for (int b = 0; b < options.batch_size; ++b) {
              const auto local = static_cast<NodeId>(rng.next_u64(
                  static_cast<std::uint64_t>(shard.num_core_nodes())));
              SspprState state(
                  NodeRef{local, static_cast<ShardId>(m)}, options.ppr);
              run_ssppr(cluster.storage(static_cast<int>(m)), state,
                        DriverOptions{});
              states.push_back(std::move(state));
            }
            const SubgraphBatch batch = convert_batch(
                cluster.storage(static_cast<int>(m)), *stores[m],
                cluster.mapping(), states, options.topk, labels);
            SageNet& net = *replicas[m];
            net.zero_grad();
            const Matrix logits = net.forward(batch);
            const auto [loss, correct] =
                net.backward_from_loss(batch, logits);
            losses[m] = loss;
            corrects[m] = correct;
          });

      // All-reduce: average gradients across replicas, then each replica
      // steps with the same averaged gradient (replicas stay identical).
      const float inv = 1.0f / static_cast<float>(machines);
      auto grads0 = replicas[0]->gradients();
      auto bgrads0 = replicas[0]->bias_gradients();
      for (int m = 1; m < machines; ++m) {
        auto grads = replicas[static_cast<std::size_t>(m)]->gradients();
        auto bgrads =
            replicas[static_cast<std::size_t>(m)]->bias_gradients();
        for (std::size_t p = 0; p < grads0.size(); ++p) {
          add_(*grads0[p], *grads[p]);
        }
        for (std::size_t p = 0; p < bgrads0.size(); ++p) {
          for (std::size_t i = 0; i < bgrads0[p]->size(); ++i) {
            (*bgrads0[p])[i] += (*bgrads[p])[i];
          }
        }
      }
      for (Matrix* g : grads0) {
        for (std::size_t i = 0; i < g->rows() * g->cols(); ++i) {
          g->data()[i] *= inv;
        }
      }
      for (std::vector<float>* g : bgrads0) {
        for (float& x : *g) x *= inv;
      }
      for (int m = 1; m < machines; ++m) {
        auto grads = replicas[static_cast<std::size_t>(m)]->gradients();
        auto bgrads =
            replicas[static_cast<std::size_t>(m)]->bias_gradients();
        for (std::size_t p = 0; p < grads0.size(); ++p) {
          *grads[p] = *grads0[p];
        }
        for (std::size_t p = 0; p < bgrads0.size(); ++p) {
          *bgrads[p] = *bgrads0[p];
        }
      }
      for (int m = 0; m < machines; ++m) {
        optimizers[static_cast<std::size_t>(m)]->step(
            replicas[static_cast<std::size_t>(m)]->gradients(),
            replicas[static_cast<std::size_t>(m)]->bias_gradients());
      }

      for (int m = 0; m < machines; ++m) {
        epoch_loss += losses[static_cast<std::size_t>(m)];
        epoch_correct += corrects[static_cast<std::size_t>(m)];
      }
      epoch_examples += machines * options.batch_size;
    }
    report.epoch_loss.push_back(
        epoch_loss / static_cast<float>(options.steps_per_epoch * machines));
    report.epoch_accuracy.push_back(static_cast<float>(epoch_correct) /
                                    static_cast<float>(epoch_examples));
    GE_LOG(kInfo) << "epoch " << epoch
                  << ": loss=" << report.epoch_loss.back()
                  << " acc=" << report.epoch_accuracy.back();
  }
  return report;
}

}  // namespace ppr::gnn
