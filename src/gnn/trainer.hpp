// Adam optimizer + distributed data-parallel training loop for the §4.5
// case study: every simulated machine trains a replica of the model on
// PPR-induced mini-batches of its own core nodes, with gradients averaged
// across machines each step (the role DistributedDataParallel plays in
// the paper's Figure 7).
#pragma once

#include "engine/cluster.hpp"
#include "gnn/sage.hpp"

namespace ppr::gnn {

/// Plain Adam over a flat parameter list.
class Adam {
 public:
  Adam(std::vector<Matrix*> params, std::vector<std::vector<float>*> biases,
       float lr = 1e-2f, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f);

  void step(const std::vector<Matrix*>& grads,
            const std::vector<std::vector<float>*>& bias_grads);

 private:
  std::vector<Matrix*> params_;
  std::vector<std::vector<float>*> biases_;
  std::vector<Matrix> m_, v_;
  std::vector<std::vector<float>> mb_, vb_;
  float lr_, beta1_, beta2_, eps_;
  long t_ = 0;
};

struct TrainOptions {
  int num_epochs = 3;
  int batch_size = 8;      // roots per machine per step
  std::size_t topk = 64;   // PPR top-K per root
  std::size_t feature_dim = 16;
  std::size_t hidden_dim = 32;
  int num_classes = 4;
  float lr = 1e-2f;
  std::uint64_t seed = 7;
  int steps_per_epoch = 8;
  SspprOptions ppr{};
};

struct TrainReport {
  std::vector<float> epoch_loss;
  std::vector<float> epoch_accuracy;
};

/// Run the full §4.5 pipeline on a cluster: per step, each machine
/// computes SSPPR for a batch of its core nodes with the PPR engine,
/// converts to subgraphs, runs forward/backward on its replica, averages
/// gradients across machines, and applies one Adam step.
TrainReport train_distributed(Cluster& cluster, const TrainOptions& options);

}  // namespace ppr::gnn
