#include "gnn/matrix.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace ppr::gnn {

Matrix Matrix::randn(std::size_t rows, std::size_t cols, float stddev,
                     std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  // Box–Muller pairs.
  for (std::size_t i = 0; i + 1 < m.data_.size(); i += 2) {
    const double u1 = rng.next_double() + 1e-12;
    const double u2 = rng.next_double();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    m.data_[i] = static_cast<float>(mag * std::cos(2 * M_PI * u2)) * stddev;
    m.data_[i + 1] =
        static_cast<float>(mag * std::sin(2 * M_PI * u2)) * stddev;
  }
  if (m.data_.size() % 2 == 1 && !m.data_.empty()) {
    m.data_.back() = static_cast<float>(rng.next_double() - 0.5) * stddev;
  }
  return m;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  GE_REQUIRE(a.cols() == b.rows(), "matmul shape mismatch");
  Matrix c(a.rows(), b.cols());
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = a.at(i, k);
      if (aik == 0.0f) continue;
      const float* brow = b.row(k);
      float* crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  GE_REQUIRE(a.rows() == b.rows(), "matmul_at_b shape mismatch");
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const float* arow = a.row(k);
    const float* brow = b.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  GE_REQUIRE(a.cols() == b.cols(), "matmul_a_bt shape mismatch");
  Matrix c(a.rows(), b.rows());
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const float* arow = a.row(i);
      const float* brow = b.row(j);
      float acc = 0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      c.at(i, j) = acc;
    }
  }
  return c;
}

void add_(Matrix& a, const Matrix& b) {
  GE_REQUIRE(a.same_shape(b), "add_ shape mismatch");
  for (std::size_t i = 0; i < a.rows() * a.cols(); ++i) {
    a.data()[i] += b.data()[i];
  }
}

void axpy_(Matrix& a, const Matrix& b, float scale) {
  GE_REQUIRE(a.same_shape(b), "axpy_ shape mismatch");
  for (std::size_t i = 0; i < a.rows() * a.cols(); ++i) {
    a.data()[i] += scale * b.data()[i];
  }
}

void add_bias_(Matrix& a, const std::vector<float>& bias) {
  GE_REQUIRE(bias.size() == a.cols(), "bias size mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    float* row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) row[j] += bias[j];
  }
}

std::vector<std::uint8_t> relu_(Matrix& a) {
  std::vector<std::uint8_t> mask(a.rows() * a.cols());
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (a.data()[i] > 0) {
      mask[i] = 1;
    } else {
      a.data()[i] = 0;
    }
  }
  return mask;
}

void relu_backward_(Matrix& grad, const std::vector<std::uint8_t>& mask) {
  GE_REQUIRE(grad.rows() * grad.cols() == mask.size(),
             "relu mask size mismatch");
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (!mask[i]) grad.data()[i] = 0;
  }
}

}  // namespace ppr::gnn
