// Minimal GraphSAGE (mean aggregator) with manual backpropagation,
// operating on SubgraphBatch mini-batches — the ShaDow-SAGE model of the
// paper's §4.5 case study.
#pragma once

#include <vector>

#include "gnn/subgraph.hpp"

namespace ppr::gnn {

/// h' = ReLU(h·W_self + mean_{u∈N(v)} h_u ·W_neigh + b)
struct SageLayer {
  Matrix w_self;
  Matrix w_neigh;
  std::vector<float> bias;

  Matrix grad_w_self;
  Matrix grad_w_neigh;
  std::vector<float> grad_bias;

  SageLayer(std::size_t in_dim, std::size_t out_dim, std::uint64_t seed);

  struct Cache {
    Matrix input;                      // H
    Matrix aggregated;                 // Ā·H
    std::vector<std::uint8_t> relu_mask;
  };

  Matrix forward(const SubgraphBatch& g, const Matrix& input,
                 Cache& cache) const;
  /// Accumulates parameter gradients; returns dL/d(input).
  Matrix backward(const SubgraphBatch& g, const Matrix& grad_out,
                  const Cache& cache);
  void zero_grad();
};

/// Two SAGE layers + linear classifier.
class SageNet {
 public:
  SageNet(std::size_t in_dim, std::size_t hidden_dim, int num_classes,
          std::uint64_t seed);

  /// Forward over the batch; returns logits for every subgraph node.
  Matrix forward(const SubgraphBatch& g);

  /// Softmax cross-entropy on the ego rows; fills gradients.
  /// Returns (loss, #correct predictions among ego nodes).
  std::pair<float, int> backward_from_loss(const SubgraphBatch& g,
                                           const Matrix& logits);

  void zero_grad();

  /// Flat views of parameters and their gradients (for the optimizer and
  /// for data-parallel gradient averaging).
  std::vector<Matrix*> parameters();
  std::vector<Matrix*> gradients();
  std::vector<std::vector<float>*> bias_parameters();
  std::vector<std::vector<float>*> bias_gradients();

 private:
  SageLayer layer1_;
  SageLayer layer2_;
  Matrix w_out_;
  std::vector<float> b_out_;
  Matrix grad_w_out_;
  std::vector<float> grad_b_out_;

  // Forward caches reused by backward.
  SageLayer::Cache cache1_;
  SageLayer::Cache cache2_;
  Matrix h2_;  // post-layer-2 activations
};

/// Mean aggregation: out[v] = Σ_u w(v,u)·h_u / Σ_u w(v,u) over subgraph
/// edges (weighted mean; zero row for isolated nodes).
Matrix aggregate_mean(const SubgraphBatch& g, const Matrix& h);
/// Transpose of aggregate_mean for backprop.
Matrix aggregate_mean_transpose(const SubgraphBatch& g, const Matrix& grad);

}  // namespace ppr::gnn
