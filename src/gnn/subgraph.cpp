#include "gnn/subgraph.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/rng.hpp"

namespace ppr::gnn {

FeatureStoreService::FeatureStoreService(RpcEndpoint& endpoint,
                                         Matrix features)
    : features_(std::move(features)) {
  endpoint.register_service(
      kFeatureServiceName,
      [this](const std::string& method,
             std::span<const std::uint8_t> payload) {
        return handle(method, payload);
      });
}

std::vector<std::uint8_t> FeatureStoreService::handle(
    const std::string& method, std::span<const std::uint8_t> payload) {
  GE_REQUIRE(method == "get_features", "unknown feature method: " + method);
  ByteReader r(payload);
  const auto locals = r.read_vec<NodeId>();
  ByteWriter w;
  w.write<std::uint64_t>(locals.size());
  w.write<std::uint64_t>(features_.cols());
  for (const NodeId l : locals) {
    GE_REQUIRE(l >= 0 && static_cast<std::size_t>(l) < features_.rows(),
               "feature row out of range");
    w.write_bytes(features_.row(static_cast<std::size_t>(l)),
                  features_.cols() * sizeof(float));
  }
  return w.take();
}

DistFeatureStore::DistFeatureStore(RpcEndpoint& endpoint,
                                   std::vector<RemoteRef> rrefs,
                                   ShardId shard_id,
                                   const Matrix* local_features)
    : rrefs_(std::move(rrefs)),
      shard_id_(shard_id),
      local_features_(local_features) {
  (void)endpoint;
  GE_REQUIRE(local_features_ != nullptr, "null local features");
}

Matrix DistFeatureStore::fetch(std::span<const NodeRef> refs) const {
  const std::size_t dim = feature_dim();
  Matrix out(refs.size(), dim);
  // Group requests by shard; local rows copy directly.
  std::vector<std::vector<std::size_t>> by_shard(rrefs_.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    by_shard[static_cast<std::size_t>(refs[i].shard)].push_back(i);
  }
  std::vector<RpcFuture> futures(rrefs_.size());
  for (std::size_t s = 0; s < rrefs_.size(); ++s) {
    if (by_shard[s].empty() || static_cast<ShardId>(s) == shard_id_) continue;
    ByteWriter w;
    std::vector<NodeId> locals;
    locals.reserve(by_shard[s].size());
    for (const std::size_t i : by_shard[s]) locals.push_back(refs[i].local);
    w.write_vec(locals);
    futures[s] = rrefs_[s].async_call("get_features", w.take());
  }
  // Local slice while remote fetches are in flight.
  for (const std::size_t i :
       by_shard[static_cast<std::size_t>(shard_id_)]) {
    std::copy_n(
        local_features_->row(static_cast<std::size_t>(refs[i].local)), dim,
        out.row(i));
  }
  for (std::size_t s = 0; s < rrefs_.size(); ++s) {
    if (by_shard[s].empty() || static_cast<ShardId>(s) == shard_id_) continue;
    const auto payload = futures[s].wait();
    ByteReader r(payload);
    const auto n = r.read<std::uint64_t>();
    const auto d = r.read<std::uint64_t>();
    GE_CHECK(n == by_shard[s].size() && d == dim,
             "feature response shape mismatch");
    for (const std::size_t i : by_shard[s]) {
      for (std::size_t j = 0; j < dim; ++j) {
        out.at(i, j) = r.read<float>();
      }
    }
  }
  return out;
}

std::vector<NodeRef> topk_ppr_nodes(const SspprState& state, std::size_t k) {
  auto entries = state.ppr_entries();
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second
                                : a.first.key() < b.first.key();
  });
  std::vector<NodeRef> out;
  out.reserve(std::min(k, entries.size()) + 1);
  out.push_back(state.source());
  for (const auto& [ref, value] : entries) {
    if (out.size() > k) break;
    if (ref == state.source()) continue;
    out.push_back(ref);
  }
  return out;
}

SubgraphBatch convert_batch(const DistGraphStorage& storage,
                            const DistFeatureStore& features,
                            const GlobalMapping& mapping,
                            std::span<const SspprState> ppr_states,
                            std::size_t k,
                            std::span<const std::int32_t> labels) {
  SubgraphBatch batch;
  // Union of top-K node sets; remember each root's subgraph index.
  std::unordered_map<std::uint64_t, std::int32_t> index_of;
  for (const SspprState& state : ppr_states) {
    for (const NodeRef ref : topk_ppr_nodes(state, k)) {
      if (index_of.emplace(ref.key(),
                           static_cast<std::int32_t>(batch.nodes.size()))
              .second) {
        batch.nodes.push_back(ref);
      }
    }
  }
  for (const SspprState& state : ppr_states) {
    batch.ego_idx.push_back(index_of.at(state.source().key()));
    batch.y.push_back(
        labels[static_cast<std::size_t>(mapping.to_global(state.source()))]);
  }

  // Fetch every selected node's neighborhood, grouped by owning shard.
  const int num_shards = storage.num_shards();
  std::vector<std::vector<NodeId>> locals(static_cast<std::size_t>(num_shards));
  std::vector<std::vector<std::size_t>> rows(
      static_cast<std::size_t>(num_shards));
  for (std::size_t i = 0; i < batch.nodes.size(); ++i) {
    const NodeRef ref = batch.nodes[i];
    locals[static_cast<std::size_t>(ref.shard)].push_back(ref.local);
    rows[static_cast<std::size_t>(ref.shard)].push_back(i);
  }
  std::vector<NeighborFetch> fetches(static_cast<std::size_t>(num_shards));
  for (ShardId s = 0; s < num_shards; ++s) {
    if (locals[static_cast<std::size_t>(s)].empty() ||
        s == storage.shard_id()) {
      continue;
    }
    fetches[static_cast<std::size_t>(s)] = storage.get_neighbor_infos_async(
        s, locals[static_cast<std::size_t>(s)]);
  }

  // Induce edges: keep (v,u) when both endpoints are selected.
  std::vector<std::vector<std::pair<std::int32_t, float>>> adj_rows(
      batch.nodes.size());
  const auto add_edges = [&](std::size_t row, const VertexProp& vp) {
    for (std::size_t e = 0; e < vp.degree(); ++e) {
      const NodeRef u{vp.nbr_local_ids[e], vp.nbr_shard_ids[e]};
      const auto it = index_of.find(u.key());
      if (it != index_of.end()) {
        adj_rows[row].emplace_back(it->second, vp.edge_weights[e]);
      }
    }
  };
  {
    const ShardId self = storage.shard_id();
    const auto& own = locals[static_cast<std::size_t>(self)];
    if (!own.empty()) {
      const auto props = storage.get_neighbor_infos_local(own);
      for (std::size_t i = 0; i < props.size(); ++i) {
        add_edges(rows[static_cast<std::size_t>(self)][i], props[i]);
      }
    }
  }
  for (ShardId s = 0; s < num_shards; ++s) {
    if (!fetches[static_cast<std::size_t>(s)].valid()) continue;
    const NeighborBatch nb = fetches[static_cast<std::size_t>(s)].wait();
    for (std::size_t i = 0; i < nb.size(); ++i) {
      add_edges(rows[static_cast<std::size_t>(s)][i], nb[i]);
    }
  }

  batch.indptr.assign(batch.nodes.size() + 1, 0);
  for (std::size_t i = 0; i < adj_rows.size(); ++i) {
    batch.indptr[i + 1] =
        batch.indptr[i] + static_cast<EdgeIndex>(adj_rows[i].size());
  }
  batch.adj.reserve(static_cast<std::size_t>(batch.indptr.back()));
  batch.edge_weights.reserve(batch.adj.capacity());
  for (const auto& row : adj_rows) {
    for (const auto& [col, wgt] : row) {
      batch.adj.push_back(col);
      batch.edge_weights.push_back(wgt);
    }
  }

  batch.x = features.fetch(batch.nodes);
  return batch;
}

Matrix make_synthetic_features(NodeId num_nodes, std::size_t dim,
                               int num_classes, std::uint64_t seed) {
  GE_REQUIRE(num_classes >= 2, "need at least two classes");
  // Class prototypes, then per-node prototype + noise: nodes of the same
  // class cluster in feature space, so a linear/GNN model can learn it.
  Matrix prototypes = Matrix::randn(static_cast<std::size_t>(num_classes),
                                    dim, 1.0f, seed ^ 0xfeedULL);
  Matrix x(static_cast<std::size_t>(num_nodes), dim);
  for (NodeId v = 0; v < num_nodes; ++v) {
    Rng rng(seed + static_cast<std::uint64_t>(v));
    const int c = static_cast<int>(
        rng.next_u64(static_cast<std::uint64_t>(num_classes)));
    for (std::size_t j = 0; j < dim; ++j) {
      x.at(static_cast<std::size_t>(v), j) =
          prototypes.at(static_cast<std::size_t>(c), j) +
          0.5f * (rng.next_float(-1.0f, 1.0f));
    }
  }
  return x;
}

std::vector<std::int32_t> make_synthetic_labels(NodeId num_nodes,
                                                int num_classes,
                                                std::uint64_t seed) {
  std::vector<std::int32_t> y(static_cast<std::size_t>(num_nodes));
  for (NodeId v = 0; v < num_nodes; ++v) {
    Rng rng(seed + static_cast<std::uint64_t>(v));
    y[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(
        rng.next_u64(static_cast<std::uint64_t>(num_classes)));
  }
  return y;
}

}  // namespace ppr::gnn
