// Dense row-major float matrix and the handful of kernels the GraphSAGE
// case study needs. Deliberately small: the GNN is a demonstration of
// integrating the PPR engine with mini-batch training (§4.5), not a deep
// learning framework.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace ppr::gnn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  static Matrix randn(std::size_t rows, std::size_t cols, float stddev,
                      std::uint64_t seed);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  void zero() { std::fill(data_.begin(), data_.end(), 0.0f); }
  bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// C = A · B.
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = Aᵀ · B.
Matrix matmul_at_b(const Matrix& a, const Matrix& b);
/// C = A · Bᵀ.
Matrix matmul_a_bt(const Matrix& a, const Matrix& b);

/// a += b (elementwise).
void add_(Matrix& a, const Matrix& b);
/// a += scale * b.
void axpy_(Matrix& a, const Matrix& b, float scale);
/// Add `bias` (1 x cols) to every row of a.
void add_bias_(Matrix& a, const std::vector<float>& bias);
/// ReLU forward in place; returns the 0/1 mask for backward.
std::vector<std::uint8_t> relu_(Matrix& a);
/// grad ⊙ mask in place.
void relu_backward_(Matrix& grad, const std::vector<std::uint8_t>& mask);

}  // namespace ppr::gnn
