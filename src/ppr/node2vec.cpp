#include "ppr/node2vec.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace ppr {

namespace {
/// Sorted packed-key set of a neighborhood, for O(log d) membership tests.
std::vector<std::uint64_t> neighbor_key_set(const VertexProp& vp) {
  std::vector<std::uint64_t> keys;
  keys.reserve(vp.degree());
  for (std::size_t k = 0; k < vp.degree(); ++k) {
    keys.push_back(NodeRef{vp.nbr_local_ids[k], vp.nbr_shard_ids[k]}.key());
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

bool contains(const std::vector<std::uint64_t>& sorted, std::uint64_t key) {
  return std::binary_search(sorted.begin(), sorted.end(), key);
}
}  // namespace

Node2vecResult node2vec_walk(const DistGraphStorage& storage,
                             std::span<const NodeId> root_locals,
                             const Node2vecOptions& options) {
  GE_REQUIRE(options.walk_length > 0, "walk_length must be positive");
  GE_REQUIRE(options.p > 0 && options.q > 0, "p and q must be positive");
  const int num_shards = storage.num_shards();
  const std::size_t n = root_locals.size();

  Node2vecResult res;
  res.num_walks = n;
  res.walk_length = options.walk_length;
  res.walks.resize(n * static_cast<std::size_t>(options.walk_length));

  struct Walker {
    NodeRef current;
    std::uint64_t prev_key = kEmptyKey;        // no previous on step 0
    std::vector<std::uint64_t> prev_neighbors; // sorted keys of N(prev)
    bool stuck = false;
  };
  std::vector<Walker> walkers(n);
  for (std::size_t i = 0; i < n; ++i) {
    walkers[i].current = NodeRef{root_locals[i], storage.shard_id()};
  }

  Rng rng(options.seed);
  std::vector<std::vector<std::size_t>> by_shard(
      static_cast<std::size_t>(num_shards));
  std::vector<std::vector<NodeId>> locals(static_cast<std::size_t>(num_shards));

  for (int step = 0; step < options.walk_length; ++step) {
    for (auto& v : by_shard) v.clear();
    for (auto& v : locals) v.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (walkers[i].stuck) continue;
      const ShardId s = walkers[i].current.shard;
      by_shard[static_cast<std::size_t>(s)].push_back(i);
      locals[static_cast<std::size_t>(s)].push_back(
          walkers[i].current.local);
    }

    // Batched full-row fetches: one per remote shard, local zero-copy.
    std::vector<NeighborFetch> fetches(static_cast<std::size_t>(num_shards));
    for (ShardId j = 0; j < num_shards; ++j) {
      if (j == storage.shard_id() ||
          locals[static_cast<std::size_t>(j)].empty()) {
        continue;
      }
      fetches[static_cast<std::size_t>(j)] =
          storage.get_neighbor_infos_async(j, locals[static_cast<std::size_t>(j)]);
    }

    const auto advance = [&](std::size_t i, const VertexProp& vp) {
      Walker& w = walkers[i];
      if (vp.degree() == 0) {
        w.stuck = true;  // dangling: the walk stays put for all steps
        return;
      }
      double total = 0;
      // Two passes: weigh, then sample by prefix sum.
      std::vector<double> weights(vp.degree());
      for (std::size_t k = 0; k < vp.degree(); ++k) {
        const std::uint64_t key =
            NodeRef{vp.nbr_local_ids[k], vp.nbr_shard_ids[k]}.key();
        double bias;
        if (key == w.prev_key) {
          bias = 1.0 / options.p;
        } else if (w.prev_key != kEmptyKey &&
                   contains(w.prev_neighbors, key)) {
          bias = 1.0;
        } else {
          bias = 1.0 / options.q;
        }
        weights[k] = static_cast<double>(vp.edge_weights[k]) * bias;
        total += weights[k];
      }
      const double target = rng.next_double() * total;
      double acc = 0;
      std::size_t pick = vp.degree() - 1;
      for (std::size_t k = 0; k < vp.degree(); ++k) {
        acc += weights[k];
        if (acc >= target) {
          pick = k;
          break;
        }
      }
      // Move: remember where we came from and its neighborhood.
      w.prev_key = w.current.key();
      w.prev_neighbors = neighbor_key_set(vp);
      w.current = NodeRef{vp.nbr_local_ids[pick], vp.nbr_shard_ids[pick]};
    };

    // Local rows first (overlapping the remote fetches), then remote.
    const ShardId self = storage.shard_id();
    if (!locals[static_cast<std::size_t>(self)].empty()) {
      const auto props = storage.get_neighbor_infos_local(
          locals[static_cast<std::size_t>(self)]);
      for (std::size_t idx = 0; idx < props.size(); ++idx) {
        advance(by_shard[static_cast<std::size_t>(self)][idx], props[idx]);
      }
    }
    for (ShardId j = 0; j < num_shards; ++j) {
      if (!fetches[static_cast<std::size_t>(j)].valid()) continue;
      const NeighborBatch batch = fetches[static_cast<std::size_t>(j)].wait();
      for (std::size_t idx = 0; idx < batch.size(); ++idx) {
        advance(by_shard[static_cast<std::size_t>(j)][idx], batch[idx]);
      }
    }

    // Record positions after the move (stuck walkers repeat in place).
    for (std::size_t i = 0; i < n; ++i) {
      res.walks[i * static_cast<std::size_t>(options.walk_length) +
                static_cast<std::size_t>(step)] = walkers[i].current.key();
    }
  }
  return res;
}

}  // namespace ppr
