// Accuracy metrics for comparing approximate SSPPR vectors against the
// power-iteration ground truth (§4.2's "97%+ accuracy of the top-100").
#pragma once

#include <cstddef>
#include <span>

namespace ppr {

/// |top-k(approx) ∩ top-k(exact)| / k. Ties in `exact` are broken by node
/// id, matching the deterministic ordering both implementations report.
double topk_precision(std::span<const double> approx,
                      std::span<const double> exact, std::size_t k);

/// Σ|approx − exact|.
double l1_error(std::span<const double> approx, std::span<const double> exact);

/// max |approx − exact|.
double max_error(std::span<const double> approx,
                 std::span<const double> exact);

}  // namespace ppr
