#include "ppr/forward_push.hpp"

#include <deque>

namespace ppr {

namespace {
/// One push at vertex v; appends newly activated vertices to `out`.
/// Shared by both variants; `in_queue` tracks frontier membership.
inline void push_vertex(const Graph& g, NodeId v, double alpha, double eps,
                        std::vector<double>& pi, std::vector<double>& r,
                        std::vector<std::uint8_t>& in_queue,
                        std::vector<NodeId>& out) {
  const auto vi = static_cast<std::size_t>(v);
  const double rv = r[vi];
  r[vi] = 0;
  in_queue[vi] = 0;
  if (rv == 0) return;
  const double dw = g.weighted_degree(v);
  if (g.degree(v) == 0 || dw <= 0) {
    pi[vi] += rv;  // dangling: all mass settles here
    return;
  }
  pi[vi] += alpha * rv;
  const double m = (1.0 - alpha) * rv / dw;
  const auto nbrs = g.neighbors(v);
  const auto weights = g.edge_weights(v);
  for (std::size_t k = 0; k < nbrs.size(); ++k) {
    const auto ui = static_cast<std::size_t>(nbrs[k]);
    r[ui] += weights[k] * m;
    if (!in_queue[ui] && r[ui] > eps * g.weighted_degree(nbrs[k])) {
      in_queue[ui] = 1;
      out.push_back(nbrs[k]);
    }
  }
}
}  // namespace

ForwardPushResult forward_push_sequential(const Graph& g, NodeId source,
                                          double alpha, double epsilon) {
  GE_REQUIRE(source >= 0 && source < g.num_nodes(), "source out of range");
  const auto n = static_cast<std::size_t>(g.num_nodes());
  ForwardPushResult res;
  res.ppr.assign(n, 0.0);
  res.residual.assign(n, 0.0);
  res.residual[static_cast<std::size_t>(source)] = 1.0;

  std::vector<std::uint8_t> in_queue(n, 0);
  std::deque<NodeId> queue;
  queue.push_back(source);
  in_queue[static_cast<std::size_t>(source)] = 1;
  std::vector<NodeId> newly;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    newly.clear();
    push_vertex(g, v, alpha, epsilon, res.ppr, res.residual, in_queue, newly);
    ++res.num_pushes;
    for (const NodeId u : newly) queue.push_back(u);
  }
  return res;
}

ForwardPushResult forward_push_parallel(const Graph& g, NodeId source,
                                        double alpha, double epsilon,
                                        int num_threads) {
  GE_REQUIRE(source >= 0 && source < g.num_nodes(), "source out of range");
  (void)num_threads;  // rounds are applied serially here; the distributed
                      // engine provides the parallel execution path.
  const auto n = static_cast<std::size_t>(g.num_nodes());
  ForwardPushResult res;
  res.ppr.assign(n, 0.0);
  res.residual.assign(n, 0.0);
  res.residual[static_cast<std::size_t>(source)] = 1.0;

  std::vector<std::uint8_t> in_frontier(n, 0);
  std::vector<NodeId> frontier{source};
  in_frontier[static_cast<std::size_t>(source)] = 1;
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    ++res.num_iterations;
    next.clear();
    // Frontier-synchronous round: all pushes read residuals drained in
    // this round; newly activated vertices wait for the next round.
    for (const NodeId v : frontier) {
      push_vertex(g, v, alpha, epsilon, res.ppr, res.residual, in_frontier,
                  next);
      ++res.num_pushes;
    }
    frontier.swap(next);
  }
  return res;
}

}  // namespace ppr
