#include "ppr/forward_push.hpp"

#include <algorithm>
#include <deque>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ppr {

namespace {
/// One push at vertex v; appends newly activated vertices to `out`.
/// Shared by both variants; `in_queue` tracks frontier membership.
inline void push_vertex(const Graph& g, NodeId v, double alpha, double eps,
                        std::vector<double>& pi, std::vector<double>& r,
                        std::vector<std::uint8_t>& in_queue,
                        std::vector<NodeId>& out) {
  const auto vi = static_cast<std::size_t>(v);
  const double rv = r[vi];
  r[vi] = 0;
  in_queue[vi] = 0;
  if (rv == 0) return;
  const double dw = g.weighted_degree(v);
  if (g.degree(v) == 0 || dw <= 0) {
    pi[vi] += rv;  // dangling: all mass settles here
    return;
  }
  pi[vi] += alpha * rv;
  const double m = (1.0 - alpha) * rv / dw;
  const auto nbrs = g.neighbors(v);
  const auto weights = g.edge_weights(v);
  for (std::size_t k = 0; k < nbrs.size(); ++k) {
    const auto ui = static_cast<std::size_t>(nbrs[k]);
    r[ui] += weights[k] * m;
    if (!in_queue[ui] && r[ui] > eps * g.weighted_degree(nbrs[k])) {
      in_queue[ui] = 1;
      out.push_back(nbrs[k]);
    }
  }
}
}  // namespace

ForwardPushResult forward_push_sequential(const Graph& g, NodeId source,
                                          double alpha, double epsilon) {
  GE_REQUIRE(source >= 0 && source < g.num_nodes(), "source out of range");
  const auto n = static_cast<std::size_t>(g.num_nodes());
  ForwardPushResult res;
  res.ppr.assign(n, 0.0);
  res.residual.assign(n, 0.0);
  res.residual[static_cast<std::size_t>(source)] = 1.0;

  std::vector<std::uint8_t> in_queue(n, 0);
  std::deque<NodeId> queue;
  queue.push_back(source);
  in_queue[static_cast<std::size_t>(source)] = 1;
  std::vector<NodeId> newly;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    newly.clear();
    push_vertex(g, v, alpha, epsilon, res.ppr, res.residual, in_queue, newly);
    ++res.num_pushes;
    for (const NodeId u : newly) queue.push_back(u);
  }
  return res;
}

ForwardPushResult forward_push_parallel(const Graph& g, NodeId source,
                                        double alpha, double epsilon,
                                        int num_threads) {
  GE_REQUIRE(source >= 0 && source < g.num_nodes(), "source out of range");
  GE_REQUIRE(num_threads >= 1, "num_threads must be >= 1");
  const auto n = static_cast<std::size_t>(g.num_nodes());
  ForwardPushResult res;
  res.ppr.assign(n, 0.0);
  res.residual.assign(n, 0.0);
  res.residual[static_cast<std::size_t>(source)] = 1.0;

#ifndef _OPENMP
  num_threads = 1;
#endif

  // Each round runs in two barrier-separated steps so residual reads in
  // step 2 never race with the drains in step 1 (the same owner-partition
  // scheme SspprState::push uses, here keyed by node id instead of submap
  // index):
  //   step 1: drain r(v) and settle the π(v) contribution of every
  //           frontier vertex — frontier vertices are distinct, so the
  //           loop is embarrassingly parallel;
  //   step 2: every thread scans all (v, u) deltas but applies only those
  //           whose target u it owns (u % nt == tid) — lock-free, and
  //           each r(u) accumulates in canonical frontier order.
  // The next frontier is sorted before the round ends, which makes the
  // result bit-identical for every thread count.
  std::vector<std::uint8_t> in_frontier(n, 0);
  std::vector<NodeId> frontier{source};
  in_frontier[static_cast<std::size_t>(source)] = 1;
  std::vector<NodeId> next;
  std::vector<double> rv;

  const auto drain = [&](std::size_t i) {
    const auto vi = static_cast<std::size_t>(frontier[i]);
    const double r = res.residual[vi];
    res.residual[vi] = 0;
    in_frontier[vi] = 0;
    if (r == 0) {
      rv[i] = 0;
      return;
    }
    const NodeId v = frontier[i];
    const double dw = g.weighted_degree(v);
    if (g.degree(v) == 0 || dw <= 0) {
      res.ppr[vi] += r;  // dangling: all mass settles here
      rv[i] = 0;
    } else {
      res.ppr[vi] += alpha * r;
      rv[i] = r;
    }
  };

  const auto scatter = [&](std::size_t i, std::size_t tid, std::size_t nt,
                           std::vector<NodeId>& activated_out) {
    if (rv[i] == 0) return;
    const NodeId v = frontier[i];
    const double m = (1.0 - alpha) * rv[i] / g.weighted_degree(v);
    const auto nbrs = g.neighbors(v);
    const auto weights = g.edge_weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const auto ui = static_cast<std::size_t>(nbrs[k]);
      if (nt > 1 && ui % nt != tid) continue;
      res.residual[ui] += weights[k] * m;
      if (!in_frontier[ui] &&
          res.residual[ui] > epsilon * g.weighted_degree(nbrs[k])) {
        in_frontier[ui] = 1;
        activated_out.push_back(nbrs[k]);
      }
    }
  };

  while (!frontier.empty()) {
    ++res.num_iterations;
    res.num_pushes += frontier.size();
    rv.resize(frontier.size());
    next.clear();
    if (num_threads <= 1 || frontier.size() < 2) {
      for (std::size_t i = 0; i < frontier.size(); ++i) drain(i);
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        scatter(i, 0, 1, next);
      }
    } else {
#ifdef _OPENMP
#pragma omp parallel num_threads(num_threads)
      {
        const auto tid = static_cast<std::size_t>(omp_get_thread_num());
        const auto nt = static_cast<std::size_t>(omp_get_num_threads());
#pragma omp for
        for (std::size_t i = 0; i < frontier.size(); ++i) drain(i);
        // Implicit barrier from the omp-for: scatters only start after
        // every drain completed.
        std::vector<NodeId> local_activated;
        for (std::size_t i = 0; i < frontier.size(); ++i) {
          scatter(i, tid, nt, local_activated);
        }
        // Merge in tid order so the pre-sort frontier is deterministic.
#pragma omp for ordered schedule(static, 1)
        for (int t = 0; t < static_cast<int>(nt); ++t) {
#pragma omp ordered
          next.insert(next.end(), local_activated.begin(),
                      local_activated.end());
        }
      }
#endif
    }
    // Canonical frontier order: makes the accumulation order in the next
    // round independent of the thread count.
    std::sort(next.begin(), next.end());
    frontier.swap(next);
  }
  return res;
}

}  // namespace ppr
