#include "ppr/bfs.hpp"

#include <deque>

#include "concurrent/flat_map.hpp"
#include "obs/trace.hpp"
#include "storage/fetch_pipeline.hpp"

namespace ppr {

BfsResult distributed_bfs(const DistGraphStorage& storage,
                          std::span<const NodeId> source_locals,
                          const BfsOptions& options) {
  const int num_shards = storage.num_shards();
  const ShardId self = storage.shard_id();
  BfsResult res;
  // Visited set: packed NodeRef -> distance. A single FlatMap suffices —
  // one BFS runs on one computing process (inter-query parallelism is
  // across queries, as in the SSPPR engine).
  FlatMap<int> visited;

  std::vector<NodeId> frontier_locals(source_locals.begin(),
                                      source_locals.end());
  std::vector<ShardId> frontier_shards(source_locals.size(), self);
  for (const NodeId l : source_locals) {
    visited[NodeRef{l, self}.key()] = 0;
  }

  // Each level is one pipeline round: the frontier rows resolve through
  // the halo/adjacency caches where resident, at most one (optionally
  // compressed) RPC per remote shard fetches the rest, and the own-shard
  // frontier expands while responses are in flight. Expansion always
  // walks each shard's rows in request order regardless of where a row
  // was resolved from, so the traversal — and the next frontier's request
  // order — is identical under every cache configuration.
  FetchPipeline pipeline(storage);
  pipeline.pin(storage.resolve_pin(options.graph_version));
  obs::ScopedSpan query_span("bfs.query");
  int depth = 0;
  while (!frontier_locals.empty() &&
         (options.max_depth < 0 || depth < options.max_depth)) {
    ++res.num_levels;
    obs::ScopedSpan level_span("bfs.level");
    pipeline.begin_round();
    for (std::size_t i = 0; i < frontier_locals.size(); ++i) {
      pipeline.add(frontier_shards[i], frontier_locals[i]);
    }

    std::vector<NodeId> next_locals;
    std::vector<ShardId> next_shards;
    const auto expand = [&](const VertexProp& vp) {
      for (std::size_t k = 0; k < vp.degree(); ++k) {
        const NodeRef u{vp.nbr_local_ids[k], vp.nbr_shard_ids[k]};
        const std::uint64_t key = u.key();
        if (visited.contains(key)) continue;
        visited[key] = depth + 1;
        next_locals.push_back(u.local);
        next_shards.push_back(u.shard);
      }
    };
    const auto expand_shard = [&](ShardId j) {
      const auto n = static_cast<std::uint32_t>(pipeline.num_rows(j));
      for (std::uint32_t r = 0; r < n; ++r) expand(pipeline.row(j, r));
    };

    pipeline.execute({options.compress, options.overlap, options.codec,
                      options.fetch_weights},
                     nullptr, [&] { expand_shard(self); });
    for (ShardId j = 0; j < num_shards; ++j) {
      if (j != self) expand_shard(j);
    }

    frontier_locals.swap(next_locals);
    frontier_shards.swap(next_shards);
    ++depth;
  }

  res.distances.reserve(visited.size());
  visited.for_each([&](std::uint64_t key, int& d) {
    res.distances.emplace_back(NodeRef::from_key(key), d);
  });
  res.num_visited = res.distances.size();
  return res;
}

std::vector<int> bfs_reference(const Graph& g,
                               std::span<const NodeId> sources,
                               int max_depth) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_nodes()), -1);
  std::deque<NodeId> queue;
  for (const NodeId s : sources) {
    GE_REQUIRE(s >= 0 && s < g.num_nodes(), "source out of range");
    dist[static_cast<std::size_t>(s)] = 0;
    queue.push_back(s);
  }
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    const int d = dist[static_cast<std::size_t>(v)];
    if (max_depth >= 0 && d >= max_depth) continue;
    for (const NodeId u : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(u)] == -1) {
        dist[static_cast<std::size_t>(u)] = d + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

}  // namespace ppr
