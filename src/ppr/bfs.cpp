#include "ppr/bfs.hpp"

#include <deque>

#include "concurrent/flat_map.hpp"

namespace ppr {

BfsResult distributed_bfs(const DistGraphStorage& storage,
                          std::span<const NodeId> source_locals,
                          const BfsOptions& options) {
  const int num_shards = storage.num_shards();
  BfsResult res;
  // Visited set: packed NodeRef -> distance. A single FlatMap suffices —
  // one BFS runs on one computing process (inter-query parallelism is
  // across queries, as in the SSPPR engine).
  FlatMap<int> visited;

  std::vector<NodeId> frontier_locals(source_locals.begin(),
                                      source_locals.end());
  std::vector<ShardId> frontier_shards(source_locals.size(),
                                       storage.shard_id());
  for (const NodeId l : source_locals) {
    visited[NodeRef{l, storage.shard_id()}.key()] = 0;
  }

  int depth = 0;
  std::vector<std::vector<NodeId>> by_shard(
      static_cast<std::size_t>(num_shards));
  while (!frontier_locals.empty() &&
         (options.max_depth < 0 || depth < options.max_depth)) {
    ++res.num_levels;
    for (auto& v : by_shard) v.clear();
    for (std::size_t i = 0; i < frontier_locals.size(); ++i) {
      by_shard[static_cast<std::size_t>(frontier_shards[i])].push_back(
          frontier_locals[i]);
    }

    // One async request per remote shard; local portion via shared memory.
    std::vector<NeighborFetch> fetches(static_cast<std::size_t>(num_shards));
    for (ShardId j = 0; j < num_shards; ++j) {
      if (j == storage.shard_id() ||
          by_shard[static_cast<std::size_t>(j)].empty()) {
        continue;
      }
      fetches[static_cast<std::size_t>(j)] = storage.get_neighbor_infos_async(
          j, by_shard[static_cast<std::size_t>(j)], options.compress);
    }

    std::vector<NodeId> next_locals;
    std::vector<ShardId> next_shards;
    const auto expand = [&](const VertexProp& vp) {
      for (std::size_t k = 0; k < vp.degree(); ++k) {
        const NodeRef u{vp.nbr_local_ids[k], vp.nbr_shard_ids[k]};
        const std::uint64_t key = u.key();
        if (visited.contains(key)) continue;
        visited[key] = depth + 1;
        next_locals.push_back(u.local);
        next_shards.push_back(u.shard);
      }
    };

    const auto& own = by_shard[static_cast<std::size_t>(storage.shard_id())];
    if (!own.empty()) {
      for (const VertexProp& vp : storage.get_neighbor_infos_local(own)) {
        expand(vp);
      }
    }
    for (ShardId j = 0; j < num_shards; ++j) {
      if (!fetches[static_cast<std::size_t>(j)].valid()) continue;
      const NeighborBatch batch = fetches[static_cast<std::size_t>(j)].wait();
      for (std::size_t i = 0; i < batch.size(); ++i) expand(batch[i]);
    }

    frontier_locals.swap(next_locals);
    frontier_shards.swap(next_shards);
    ++depth;
  }

  res.distances.reserve(visited.size());
  visited.for_each([&](std::uint64_t key, int& d) {
    res.distances.emplace_back(NodeRef::from_key(key), d);
  });
  res.num_visited = res.distances.size();
  return res;
}

std::vector<int> bfs_reference(const Graph& g,
                               std::span<const NodeId> sources,
                               int max_depth) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_nodes()), -1);
  std::deque<NodeId> queue;
  for (const NodeId s : sources) {
    GE_REQUIRE(s >= 0 && s < g.num_nodes(), "source out of range");
    dist[static_cast<std::size_t>(s)] = 0;
    queue.push_back(s);
  }
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    const int d = dist[static_cast<std::size_t>(v)];
    if (max_depth >= 0 && d >= max_depth) continue;
    for (const NodeId u : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(u)] == -1) {
        dist[static_cast<std::size_t>(u)] = d + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

}  // namespace ppr
