#include "ppr/khop_sampler.hpp"

#include "concurrent/flat_map.hpp"

namespace ppr {

KHopResult sample_khop(const DistGraphStorage& storage,
                       std::span<const NodeId> root_locals,
                       const KHopOptions& options) {
  GE_REQUIRE(!options.fanouts.empty(), "need at least one fanout level");
  for (const int f : options.fanouts) {
    GE_REQUIRE(f >= 1, "fanouts must be positive");
  }
  const int num_shards = storage.num_shards();

  KHopResult res;
  res.levels.emplace_back();
  for (const NodeId l : root_locals) {
    res.levels.back().push_back(NodeRef{l, storage.shard_id()});
  }

  std::vector<std::vector<NodeId>> by_shard_locals(
      static_cast<std::size_t>(num_shards));
  for (std::size_t depth = 0; depth < options.fanouts.size(); ++depth) {
    const auto& frontier = res.levels.back();
    if (frontier.empty()) break;
    const int k = options.fanouts[depth];
    const std::uint64_t seed =
        options.seed * 0x9e3779b97f4a7c15ULL + depth;

    for (auto& v : by_shard_locals) v.clear();
    for (const NodeRef ref : frontier) {
      by_shard_locals[static_cast<std::size_t>(ref.shard)].push_back(
          ref.local);
    }

    // One request per shard with sources on it; own shard served locally
    // while the remote futures are in flight.
    std::vector<KSampleFetch> fetches(static_cast<std::size_t>(num_shards));
    for (ShardId j = 0; j < num_shards; ++j) {
      if (j == storage.shard_id() ||
          by_shard_locals[static_cast<std::size_t>(j)].empty()) {
        continue;
      }
      fetches[static_cast<std::size_t>(j)] = storage.sample_k_neighbors_async(
          j, by_shard_locals[static_cast<std::size_t>(j)], k, seed);
    }

    FlatMap<std::uint8_t> next_seen;
    std::vector<NodeRef> next_level;
    const auto absorb = [&](ShardId j, const KSampleResult& sample) {
      const auto& sources = by_shard_locals[static_cast<std::size_t>(j)];
      GE_CHECK(sample.indptr.size() == sources.size() + 1,
               "k-sample shape mismatch");
      for (std::size_t i = 0; i < sources.size(); ++i) {
        const NodeRef src{sources[i], j};
        for (EdgeIndex e = sample.indptr[i]; e < sample.indptr[i + 1]; ++e) {
          const NodeRef dst{
              sample.local_ids[static_cast<std::size_t>(e)],
              sample.shard_ids[static_cast<std::size_t>(e)]};
          res.edges.emplace_back(src, dst);
          if (!next_seen.contains(dst.key())) {
            next_seen[dst.key()] = 1;
            next_level.push_back(dst);
          }
        }
      }
    };

    const auto& own = by_shard_locals[static_cast<std::size_t>(
        storage.shard_id())];
    if (!own.empty()) {
      absorb(storage.shard_id(),
             storage.sample_k_neighbors(storage.shard_id(), own, k, seed));
    }
    for (ShardId j = 0; j < num_shards; ++j) {
      if (!fetches[static_cast<std::size_t>(j)].valid()) continue;
      absorb(j, fetches[static_cast<std::size_t>(j)].wait());
    }
    res.levels.push_back(std::move(next_level));
  }
  return res;
}

}  // namespace ppr
