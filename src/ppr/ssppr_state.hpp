// SSPPR query state and the two PPR operators exposed by the engine
// (§3.3): pop (drain the activated vertex set) and push (apply residual
// propagation for a batch of sources given their neighbor info).
//
// The state keeps π (PPR estimates) and r (residuals, which also carry
// activated-set membership) in one of two interchangeable representations:
//
//   * sparse — sharded parallel hash maps keyed by packed
//     <local id, shard id> NodeRefs. Right when the activated set is a
//     tiny fraction of the graph (low ε, late rounds).
//   * dense — flat per-shard double arrays indexed by
//     shard_base[shard] + local, plus a frontier bitmap. Right when the
//     frontier approaches |V_core| (high ε, early rounds, large batches):
//     no hashing, no probing, cache-linear updates, and the inner loop
//     vectorizes (common/simd.hpp).
//
// The adaptive kernel (default) measures frontier density at every pop()
// and promotes/demotes between the two with an exact, loss-free copy, so
// results are bit-identical under ANY switch schedule: both modes apply
// the same IEEE operations in the same (i, k) scan order, activation
// append order is preserved, and promotion/demotion moves values without
// arithmetic. The dense representation needs the cluster's shard sizes —
// bind_topology() / SspprOptions::shard_core_counts; without a topology
// the adaptive kernel simply stays sparse.
//
// Batched pushes above a size threshold run multi-threaded with the
// lock-free submap-partitioning scheme (each OpenMP thread exclusively
// owns keys with submap_index(key) % num_threads == tid). The dense mode
// uses the same ownership function, so per-thread activation lists — and
// therefore the merged activation order — match the sparse mode exactly.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "concurrent/sharded_map.hpp"
#include "rpc/buffer_pool.hpp"
#include "storage/shard.hpp"

namespace ppr {

/// Representation policy for the push loop.
enum class SspprKernel : std::uint8_t {
  kSparse = 0,    // always the sharded hash maps (the classic path)
  kDense = 1,     // always the flat arrays (requires a bound topology)
  kAdaptive = 2,  // per-round choice from measured frontier density
};

const char* kernel_name(SspprKernel k);

struct SspprOptions {
  double alpha = 0.462;      // teleport probability (paper's default)
  double epsilon = 1e-6;     // residual threshold
  int num_threads = 1;       // max threads for the push operator
  /// Use multi-threaded push only when the batch has at least this many
  /// source nodes (the paper's "simple strategy" for the OpenMP switch).
  std::size_t parallel_threshold = 64;
  int submap_bits = 6;       // 2^bits submaps per hash map
  /// Push-loop representation policy (see SspprKernel).
  SspprKernel kernel = SspprKernel::kAdaptive;
  /// Adaptive switch point: promote to dense when frontier density
  /// (|activated| / Σ shard_core_counts) reaches this; demote back to
  /// sparse below dense_threshold * kDemoteHysteresis. The default sits
  /// below the measured sparse/dense crossover (bench_kernel_density) so
  /// the dense kernel captures most of its win while promote/demote churn
  /// on near-empty frontiers stays impossible.
  double dense_threshold = 0.005;
  /// Core-node count per shard (the dense layout). Usually filled by the
  /// engine from the cluster mapping; empty = no topology bound, dense
  /// unavailable.
  std::vector<NodeId> shard_core_counts{};
};

/// Hysteresis factor between the promote and demote thresholds, so a
/// density hovering at the switch point doesn't thrash representations.
inline constexpr double kDemoteHysteresis = 0.25;

/// Per-node residual entry. in_frontier doubles as activated-set
/// membership so frontier insertion is one submap access.
struct Residual {
  double r = 0;
  bool in_frontier = false;
};

class SspprState {
 public:
  /// Start a query from `source` (which must be a core node of the shard
  /// that owns the query, per the owner-compute rule).
  SspprState(NodeRef source, SspprOptions options);

  /// Recycle this state for a fresh query from `source`: clears π, r, and
  /// the activated set but keeps every submap's allocated capacity and the
  /// dense arrays, so a pooled state serves many queries without
  /// reallocating (the batched throughput harness relies on this).
  void reset(NodeRef source);

  NodeRef source() const { return source_; }
  const SspprOptions& options() const { return options_; }

  /// Bind the cluster's per-shard core-node counts, sizing the dense
  /// layout. Idempotent for an identical topology; rebinding a different
  /// one is only legal while the state is sparse.
  void bind_topology(std::span<const NodeId> shard_core_counts);
  /// True when a topology is bound (the dense representation is usable).
  bool dense_capable() const { return universe_ != 0; }
  /// Σ shard_core_counts: the dense universe size.
  std::size_t dense_universe() const { return universe_; }

  /// PPR Op 1 — pop: return the current activated vertex set and clear it.
  /// Every returned node MUST be fed to push() before the next pop.
  /// This is the adaptive kernel's decision point: frontier density is
  /// measured here and the representation switched for the coming round.
  void pop(std::vector<NodeId>& node_ids, std::vector<ShardId>& shard_ids);

  /// PPR Op 2 — push: apply one forward-push step to each source node
  /// `(node_ids[i], shard_ids[i])` whose neighborhood is `infos[i]`.
  /// Newly activated nodes (r > ε·d_w, not already queued) join the set.
  void push(std::span<const VertexProp> infos,
            std::span<const NodeId> node_ids,
            std::span<const ShardId> shard_ids);

  /// Overload for decoded remote responses: rows are read straight out of
  /// the batch's CSR arrays (no per-push materialization of a VertexProp
  /// vector — the core push is templated on a row accessor).
  void push(const NeighborBatch& batch, std::span<const NodeId> node_ids,
            std::span<const ShardId> shard_ids);

  /// Loss-free representation switches. Exact: every stored value moves
  /// bitwise, no arithmetic. Only legal at a round boundary (between a
  /// completed push group and the next pop). promote requires a bound
  /// topology; both are no-ops when already in the target representation.
  void promote_to_dense();
  void demote_to_sparse();

  /// True while the dense representation holds the state.
  bool dense_active() const { return dense_; }
  const char* kernel_mode_name() const { return dense_ ? "dense" : "sparse"; }
  /// Frontier density measured by the most recent pop() (0 when no
  /// topology is bound).
  double last_round_density() const { return last_density_; }
  std::size_t promotions() const { return promotions_; }
  std::size_t demotions() const { return demotions_; }

  bool frontier_empty() const { return activated_.empty(); }
  std::size_t frontier_size() const { return activated_.size(); }

  /// Total push operations applied (for the work-count ablations).
  std::size_t num_pushes() const { return num_pushes_; }

  /// Non-zero PPR estimates accumulated so far.
  std::vector<std::pair<NodeRef, double>> ppr_entries() const;
  /// Residual mass per node (diagnostics / invariant tests).
  std::vector<std::pair<NodeRef, double>> residual_entries() const;

  /// Dense |V| vector of PPR values indexed by original global node id.
  std::vector<double> to_dense(const GlobalMapping& mapping,
                               NodeId num_nodes) const;

  /// π-mass + r-mass; equals 1 up to float error at any point of the
  /// algorithm (mass-conservation invariant of forward push). Summed in
  /// canonical ascending-key order (π before r per node) in BOTH
  /// representations, so the value is bit-identical across kernel modes
  /// and switch schedules.
  double total_mass() const;

  /// Pool recycling the per-push round scratch (rv + the dense kernel's
  /// SIMD precompute rows). Separate from BufferPool::global() (the wire
  /// path's pool) so each plane's zero-allocation property is auditable
  /// on its own; registered as `ppr.scratch_pool.*`.
  static BufferPool& scratch_pool();

 private:
  /// Core push, templated on `row(i) -> VertexProp` so span-of-props and
  /// NeighborBatch inputs share one zero-copy implementation.
  template <typename RowFn>
  void push_rows(RowFn&& row, std::span<const NodeId> node_ids,
                 std::span<const ShardId> shard_ids);

  /// Flat index of a core node in the dense arrays.
  std::size_t slot_for(ShardId shard, NodeId local) const {
    GE_CHECK(static_cast<std::uint32_t>(shard) < shard_counts_.size() &&
                 static_cast<std::uint32_t>(local) <
                     static_cast<std::uint32_t>(
                         shard_counts_[static_cast<std::size_t>(shard)]),
             "node outside the bound dense topology");
    return shard_base_[static_cast<std::size_t>(shard)] +
           static_cast<std::size_t>(local);
  }
  std::size_t slot_for_key(std::uint64_t key) const {
    const NodeRef ref = NodeRef::from_key(key);
    return slot_for(ref.shard, ref.local);
  }

  bool frontier_bit(std::size_t slot) const {
    return (frontier_bits_[slot >> 6] >> (slot & 63)) & 1u;
  }

  void seed(NodeRef source);
  void ensure_dense_storage();
  void record_pop_metrics() const;

  NodeRef source_;
  SspprOptions options_;
  ShardedMap<double> pi_;
  ShardedMap<Residual> residual_;
  std::vector<std::uint64_t> activated_;
  std::size_t num_pushes_ = 0;

  // Dense representation (allocated lazily at first promotion, then kept
  // for the state's lifetime). Invariant: all-zero whenever dense_ is
  // false, so promotion is a plain copy-in.
  bool dense_ = false;
  std::vector<NodeId> shard_counts_;
  std::vector<std::size_t> shard_base_;  // prefix sums; back() == universe_
  std::size_t universe_ = 0;
  std::vector<double> dense_pi_;
  std::vector<double> dense_r_;
  std::vector<std::uint64_t> frontier_bits_;
  double last_density_ = 0.0;
  std::size_t promotions_ = 0;
  std::size_t demotions_ = 0;

  // Per-thread activation lists for the multi-threaded push, merged in
  // thread-id order after the parallel region so the activation order is
  // deterministic (and identical between the sparse and dense kernels).
  std::vector<std::vector<std::uint64_t>> mt_activated_;
};

}  // namespace ppr
