// SSPPR query state and the two PPR operators exposed by the engine
// (§3.3): pop (drain the activated vertex set) and push (apply residual
// propagation for a batch of sources given their neighbor info).
//
// State lives in sharded parallel hash maps keyed by packed
// <local id, shard id> NodeRefs — π (PPR estimates) and r (residuals,
// which also carry the activated-set membership flag). Batched pushes
// above a size threshold run multi-threaded with the lock-free
// submap-partitioning scheme (each OpenMP thread exclusively owns the
// submaps with index ≡ thread id, so no locks are required).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "concurrent/sharded_map.hpp"
#include "storage/shard.hpp"

namespace ppr {

struct SspprOptions {
  double alpha = 0.462;      // teleport probability (paper's default)
  double epsilon = 1e-6;     // residual threshold
  int num_threads = 1;       // max threads for the push operator
  /// Use multi-threaded push only when the batch has at least this many
  /// source nodes (the paper's "simple strategy" for the OpenMP switch).
  std::size_t parallel_threshold = 64;
  int submap_bits = 6;       // 2^bits submaps per hash map
};

/// Per-node residual entry. in_frontier doubles as activated-set
/// membership so frontier insertion is one submap access.
struct Residual {
  double r = 0;
  bool in_frontier = false;
};

class SspprState {
 public:
  /// Start a query from `source` (which must be a core node of the shard
  /// that owns the query, per the owner-compute rule).
  SspprState(NodeRef source, SspprOptions options);

  /// Recycle this state for a fresh query from `source`: clears π, r, and
  /// the activated set but keeps every submap's allocated capacity, so a
  /// pooled state serves many queries without reallocating (the batched
  /// throughput harness relies on this).
  void reset(NodeRef source);

  NodeRef source() const { return source_; }
  const SspprOptions& options() const { return options_; }

  /// PPR Op 1 — pop: return the current activated vertex set and clear it.
  /// Every returned node MUST be fed to push() before the next pop.
  void pop(std::vector<NodeId>& node_ids, std::vector<ShardId>& shard_ids);

  /// PPR Op 2 — push: apply one forward-push step to each source node
  /// `(node_ids[i], shard_ids[i])` whose neighborhood is `infos[i]`.
  /// Newly activated nodes (r > ε·d_w, not already queued) join the set.
  void push(std::span<const VertexProp> infos,
            std::span<const NodeId> node_ids,
            std::span<const ShardId> shard_ids);

  /// Overload for decoded remote responses: rows are read straight out of
  /// the batch's CSR arrays (no per-push materialization of a VertexProp
  /// vector — the core push is templated on a row accessor).
  void push(const NeighborBatch& batch, std::span<const NodeId> node_ids,
            std::span<const ShardId> shard_ids);

  bool frontier_empty() const { return activated_.empty(); }
  std::size_t frontier_size() const { return activated_.size(); }

  /// Total push operations applied (for the work-count ablations).
  std::size_t num_pushes() const { return num_pushes_; }

  /// Non-zero PPR estimates accumulated so far.
  std::vector<std::pair<NodeRef, double>> ppr_entries() const;
  /// Residual mass per node (diagnostics / invariant tests).
  std::vector<std::pair<NodeRef, double>> residual_entries() const;

  /// Dense |V| vector of PPR values indexed by original global node id.
  std::vector<double> to_dense(const GlobalMapping& mapping,
                               NodeId num_nodes) const;

  /// π-mass + r-mass; equals 1 up to float error at any point of the
  /// algorithm (mass-conservation invariant of forward push).
  double total_mass() const;

 private:
  /// Core push, templated on `row(i) -> VertexProp` so span-of-props and
  /// NeighborBatch inputs share one zero-copy implementation.
  template <typename RowFn>
  void push_rows(RowFn&& row, std::span<const NodeId> node_ids,
                 std::span<const ShardId> shard_ids);

  NodeRef source_;
  SspprOptions options_;
  ShardedMap<double> pi_;
  ShardedMap<Residual> residual_;
  std::vector<std::uint64_t> activated_;
  std::size_t num_pushes_ = 0;
};

}  // namespace ppr
