#include "ppr/random_walk.hpp"

namespace ppr {

RandomWalkResult distributed_random_walk(const DistGraphStorage& g,
                                         std::span<const NodeId> root_locals,
                                         const RandomWalkOptions& options) {
  GE_REQUIRE(options.walk_length > 0, "walk_length must be positive");
  const std::size_t n = root_locals.size();
  const int num_shards = g.num_shards();

  RandomWalkResult res;
  res.num_walks = n;
  res.walk_length = options.walk_length;
  res.walks.resize(n * static_cast<std::size_t>(options.walk_length));

  std::vector<NodeId> node_ids(root_locals.begin(), root_locals.end());
  std::vector<ShardId> shard_ids(n, g.shard_id());

  std::vector<std::vector<std::size_t>> by_shard(
      static_cast<std::size_t>(num_shards));
  std::vector<NodeId> request;

  for (int step = 0; step < options.walk_length; ++step) {
    const std::uint64_t step_seed =
        options.seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(step);
    for (auto& v : by_shard) v.clear();
    for (std::size_t i = 0; i < n; ++i) {
      by_shard[static_cast<std::size_t>(shard_ids[i])].push_back(i);
    }

    if (options.batch) {
      // One async request per destination shard, then apply results.
      std::vector<RpcFuture> futures(static_cast<std::size_t>(num_shards));
      std::vector<bool> is_local(static_cast<std::size_t>(num_shards), false);
      for (ShardId j = 0; j < num_shards; ++j) {
        const auto& idx = by_shard[static_cast<std::size_t>(j)];
        if (idx.empty()) continue;
        if (j == g.shard_id()) {
          is_local[static_cast<std::size_t>(j)] = true;
          continue;
        }
        request.clear();
        for (const std::size_t i : idx) request.push_back(node_ids[i]);
        futures[static_cast<std::size_t>(j)] =
            g.sample_one_neighbor_async(j, request, step_seed);
      }
      for (ShardId j = 0; j < num_shards; ++j) {
        const auto& idx = by_shard[static_cast<std::size_t>(j)];
        if (idx.empty()) continue;
        SampleResult sample;
        if (is_local[static_cast<std::size_t>(j)]) {
          request.clear();
          for (const std::size_t i : idx) request.push_back(node_ids[i]);
          sample = g.sample_one_neighbor(j, request, step_seed);
        } else {
          sample = DistGraphStorage::decode_sample(
              futures[static_cast<std::size_t>(j)].wait());
        }
        for (std::size_t k = 0; k < idx.size(); ++k) {
          const std::size_t i = idx[k];
          node_ids[i] = sample.local_ids[k];
          shard_ids[i] = sample.shard_ids[k];
          res.walks[i * static_cast<std::size_t>(options.walk_length) +
                    static_cast<std::size_t>(step)] = sample.global_ids[k];
        }
      }
    } else {
      // Unbatched baseline: one request per walker per step.
      for (std::size_t i = 0; i < n; ++i) {
        const NodeId one[] = {node_ids[i]};
        const SampleResult sample = g.sample_one_neighbor(
            shard_ids[i], one, step_seed ^ (i * 0x2545f4914f6cdd1dULL));
        node_ids[i] = sample.local_ids[0];
        shard_ids[i] = sample.shard_ids[0];
        res.walks[i * static_cast<std::size_t>(options.walk_length) +
                  static_cast<std::size_t>(step)] = sample.global_ids[0];
      }
    }
  }
  return res;
}

}  // namespace ppr
