#include "ppr/random_walk.hpp"

#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "storage/fetch_pipeline.hpp"

namespace ppr {

namespace {

/// Seed of walker `i`'s private RNG stream at one step. Shared by both
/// modes: the unbatched baseline passes it to the server-side sampler
/// (whose first draw is exactly the client-side pick below), the batched
/// mode seeds a client-side Rng — which is what keeps the two modes
/// bit-identical for a given seed.
std::uint64_t walker_seed(std::uint64_t step_seed, std::size_t i) {
  return step_seed ^ (static_cast<std::uint64_t>(i) * 0x2545f4914f6cdd1dULL);
}

/// Weighted choice proportional to edge weight — the same pick the
/// server-side sampler makes from the same RNG stream.
std::size_t weighted_pick(const VertexProp& prop, std::uint64_t seed) {
  Rng rng(seed);
  const float target = rng.next_float(0.0f, prop.weighted_degree);
  float acc = 0;
  std::size_t pick = prop.degree() - 1;
  for (std::size_t k = 0; k < prop.degree(); ++k) {
    acc += prop.edge_weights[k];
    if (acc >= target) {
      pick = k;
      break;
    }
  }
  return pick;
}

}  // namespace

RandomWalkResult distributed_random_walk(const DistGraphStorage& g,
                                         std::span<const NodeId> root_locals,
                                         const RandomWalkOptions& options) {
  GE_REQUIRE(options.walk_length > 0, "walk_length must be positive");
  const std::size_t n = root_locals.size();
  const ShardId self = g.shard_id();

  RandomWalkResult res;
  res.num_walks = n;
  res.walk_length = options.walk_length;
  res.walks.resize(n * static_cast<std::size_t>(options.walk_length));

  std::vector<NodeId> node_ids(root_locals.begin(), root_locals.end());
  std::vector<ShardId> shard_ids(n, self);
  // Current global id per walker: needed so a dangling node (degree 0)
  // can record itself without a reverse lookup.
  std::vector<NodeId> cur_global(n);
  for (std::size_t i = 0; i < n; ++i) {
    cur_global[i] = g.local_shard().core_global_id(root_locals[i]);
  }

  if (options.batch) {
    // Each step is one pipeline round over the walkers' current nodes
    // (deduplicated per shard — colocated walkers share one row), then a
    // client-side weighted pick per walker from its private RNG stream.
    // Sampling client-side is what lets walks ride the halo/adjacency
    // caches: the row crosses the wire (at most once), not the sample.
    FetchPipeline pipeline(g);
    pipeline.pin(g.resolve_pin(options.graph_version));
    obs::ScopedSpan query_span("walk.query");
    std::vector<std::uint8_t> advanced(n);
    for (int step = 0; step < options.walk_length; ++step) {
      obs::ScopedSpan step_span("walk.step");
      const std::uint64_t step_seed =
          options.seed * 0x9e3779b97f4a7c15ULL +
          static_cast<std::uint64_t>(step);
      pipeline.begin_round();
      for (std::size_t i = 0; i < n; ++i) {
        pipeline.add(shard_ids[i], node_ids[i]);
      }

      const auto advance = [&](std::size_t i) {
        const ShardId shard = shard_ids[i];
        const VertexProp prop =
            pipeline.row(shard, pipeline.row_of(shard, node_ids[i]));
        if (prop.degree() > 0) {
          const std::size_t pick =
              weighted_pick(prop, walker_seed(step_seed, i));
          node_ids[i] = prop.nbr_local_ids[pick];
          shard_ids[i] = prop.nbr_shard_ids[pick];
          cur_global[i] = prop.nbr_global_ids[pick];
        }
        // Dangling node: the walk restarts at itself.
        res.walks[i * static_cast<std::size_t>(options.walk_length) +
                  static_cast<std::size_t>(step)] = cur_global[i];
      };

      advanced.assign(n, 0);
      pipeline.execute({options.compress, options.overlap, options.codec},
                       nullptr, [&] {
        // Advance own-shard walkers while remote rows are in flight.
        for (std::size_t i = 0; i < n; ++i) {
          if (shard_ids[i] == self) {
            advance(i);
            advanced[i] = 1;
          }
        }
      });
      for (std::size_t i = 0; i < n; ++i) {
        if (!advanced[i]) advance(i);
      }
    }
    return res;
  }

  // Unbatched baseline: one server-side sampling request per walker per
  // step, each pinned to the walk's admission version.
  const std::uint64_t pin = g.resolve_pin(options.graph_version);
  for (int step = 0; step < options.walk_length; ++step) {
    const std::uint64_t step_seed =
        options.seed * 0x9e3779b97f4a7c15ULL +
        static_cast<std::uint64_t>(step);
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId one[] = {node_ids[i]};
      const SampleResult sample = g.sample_one_neighbor(
          shard_ids[i], one, walker_seed(step_seed, i), pin);
      node_ids[i] = sample.local_ids[0];
      shard_ids[i] = sample.shard_ids[0];
      res.walks[i * static_cast<std::size_t>(options.walk_length) +
                static_cast<std::size_t>(step)] = sample.global_ids[0];
    }
  }
  return res;
}

}  // namespace ppr
