// Single-machine Forward Push reference implementations (Algorithm 1 and
// the parallel variant of Shun et al. the engine batches on).
//
// These run directly on the full Graph with dense state arrays; they are
// the ground truth the distributed engine is validated against, and the
// "single machine base algorithm" of §3.2.3.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace ppr {

struct ForwardPushResult {
  std::vector<double> ppr;       // π(ε), indexed by node id
  std::vector<double> residual;  // final residuals
  std::size_t num_pushes = 0;
  std::size_t num_iterations = 0;  // frontier rounds (parallel variant)
};

/// Sequential Forward Push (Algorithm 1): processes one activated vertex
/// at a time from a work queue until no residual exceeds ε·d_w.
ForwardPushResult forward_push_sequential(const Graph& g, NodeId source,
                                          double alpha, double epsilon);

/// Parallel (frontier-synchronous) Forward Push: each round drains the
/// whole activated set, pushing all vertices before recomputing the
/// frontier. Slightly more pushes than sequential, but batchable — the
/// property the distributed engine exploits.
ForwardPushResult forward_push_parallel(const Graph& g, NodeId source,
                                        double alpha, double epsilon,
                                        int num_threads = 1);

}  // namespace ppr
