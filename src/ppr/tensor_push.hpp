// "PyTorch Tensor" baseline: distributed parallel Forward Push built only
// from whole-tensor operations over dense |V|-length state (§4.2).
//
// Faithful to the paper's baseline in both semantics and cost model:
// per-query state is a pair of dense |V| tensors (π, r); every step of the
// iteration is a whole-tensor kernel that allocates its output (greater /
// nonzero / masked_select / index_select / where / repeat_interleave /
// scatter_add), so activated-node retrieval and bookkeeping cost O(|V|)
// per iteration regardless of how few nodes are active — the structural
// overhead Table 2 quantifies. Neighbor fetches reuse the same
// Distributed Graph Storage as the engine, with local fetches going
// through the serialize/deserialize (tensor-wrapping) path, exactly as
// the paper describes for the tensor baseline.
#pragma once

#include <memory>
#include <vector>

#include "common/timer.hpp"
#include "storage/dist_storage.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace ppr {

struct TensorPushOptions {
  double alpha = 0.462;
  double epsilon = 1e-6;
  bool compress = true;  // CSR-compressed remote responses
  bool overlap = false;  // overlap local ops with in-flight remote calls
};

struct TensorPushResult {
  std::vector<double> ppr;  // dense, indexed by global node id
  std::size_t num_iterations = 0;
  std::size_t num_pushes = 0;
};

/// Per-graph context shared by all tensor-baseline queries: dense lookup
/// tables as tensors (weighted degree, global→shard, global→local,
/// shard→globals).
class TensorPushContext {
 public:
  TensorPushContext(const GlobalMapping& mapping, NodeId num_nodes,
                    std::vector<float> dense_weighted_degrees);

  NodeId num_nodes() const {
    return static_cast<NodeId>(dw_.size());
  }
  const DoubleTensor& dw_tensor() const { return dw_; }
  const IntTensor& shard_of_tensor() const { return shard_of_; }
  const IntTensor& local_of_tensor() const { return local_of_; }
  const IntTensor& globals_of_shard(ShardId s) const {
    return global_of_[static_cast<std::size_t>(s)];
  }

  // Scalar accessors (tests, conversions).
  const std::vector<float>& dense_dw() const { return dense_dw_; }
  ShardId shard_of(NodeId global) const {
    return shard_of_[static_cast<std::size_t>(global)];
  }
  NodeId local_of(NodeId global) const {
    return local_of_[static_cast<std::size_t>(global)];
  }
  NodeId global_of(ShardId shard, NodeId local) const {
    return global_of_[static_cast<std::size_t>(shard)]
                     [static_cast<std::size_t>(local)];
  }

 private:
  std::vector<float> dense_dw_;
  DoubleTensor dw_;
  IntTensor shard_of_;
  IntTensor local_of_;
  std::vector<IntTensor> global_of_;
};

/// Run one whole-graph SSPPR query with the tensor baseline.
/// `timers`, if given, accumulates the Fig.-6 breakdown (kPop = activated
/// scan, kLocalFetch, kRemoteFetch, kPush = dense update; per-shard mask
/// construction lands in kOther).
TensorPushResult tensor_forward_push(const DistGraphStorage& storage,
                                     const TensorPushContext& ctx,
                                     NodeId source_global,
                                     const TensorPushOptions& options,
                                     PhaseTimers* timers = nullptr);

}  // namespace ppr
