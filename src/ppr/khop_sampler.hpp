// GraphSAGE-style k-hop neighborhood sampler over the Distributed Graph
// Storage — the BFS/neighbor-sampling mini-batch construction the paper's
// introduction lists alongside Random Walk and PPR [10]. Per level, at
// most one sample_k_neighbors RPC goes to each shard (the same batching
// discipline as the SSPPR driver).
#pragma once

#include <vector>

#include "storage/dist_storage.hpp"

namespace ppr {

struct KHopOptions {
  /// Fan-out per level, outermost first (e.g. {10, 5} samples up to 10
  /// neighbors of each root, then 5 of each of those).
  std::vector<int> fanouts{10, 5};
  std::uint64_t seed = 1;
};

struct KHopResult {
  /// Sampled nodes per level; level 0 is the roots.
  std::vector<std::vector<NodeRef>> levels;
  /// Sampled edges as (src, dst) NodeRef pairs, src from level i, dst
  /// from level i+1 (dst may repeat across sources).
  std::vector<std::pair<NodeRef, NodeRef>> edges;

  std::size_t num_sampled_nodes() const {
    std::size_t n = 0;
    for (const auto& level : levels) n += level.size();
    return n;
  }
};

/// Sample the k-hop neighborhood of `root_locals` (core nodes of this
/// process's shard). Nodes are deduplicated within each level.
KHopResult sample_khop(const DistGraphStorage& storage,
                       std::span<const NodeId> root_locals,
                       const KHopOptions& options = {});

}  // namespace ppr
