#include "ppr/power_iteration.hpp"

#include <cmath>

namespace ppr {

CsrMatrix build_transition_matrix(const Graph& g) {
  // For an undirected graph the neighbors of u are exactly its
  // in-neighbors, so row u of P^T reuses the adjacency of u with values
  // W(v,u)/d_w(v).
  const auto& indptr = g.indptr();
  const auto& adj = g.adj();
  const auto& weights = g.weights();
  std::vector<float> values(adj.size());
#pragma omp parallel for schedule(static)
  for (std::size_t k = 0; k < adj.size(); ++k) {
    const float dw = g.weighted_degree(adj[k]);
    values[k] = dw > 0 ? weights[k] / dw : 0.0f;
  }
  return CsrMatrix(indptr, adj, std::move(values));
}

PowerIterationResult power_iteration(const Graph& g, const CsrMatrix& pt,
                                     NodeId source, double alpha,
                                     double tolerance,
                                     std::size_t max_iterations) {
  GE_REQUIRE(source >= 0 && source < g.num_nodes(), "source out of range");
  const auto n = static_cast<std::size_t>(g.num_nodes());
  PowerIterationResult res;
  res.ppr.assign(n, 0.0);

  // Random-walk-with-restart semantics identical to Forward Push: a walk
  // at v terminates there with probability α (probability 1 at a dangling
  // node), else moves to a weighted random neighbor. `mass` is the
  // distribution of still-alive walks; iterating to ||mass||₁ < tol is
  // Forward Push with a global (not per-node) residual bound.
  DoubleTensor mass(n);
  mass[static_cast<std::size_t>(source)] = 1.0;

  std::vector<std::uint8_t> dangling(n, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) == 0 || g.weighted_degree(v) <= 0) {
      dangling[static_cast<std::size_t>(v)] = 1;
    }
  }

  for (std::size_t it = 0; it < max_iterations; ++it) {
    double remaining = 0;
#pragma omp parallel for schedule(static) reduction(+ : remaining)
    for (std::size_t v = 0; v < n; ++v) {
      if (mass[v] == 0) continue;
      if (dangling[v]) {
        res.ppr[v] += mass[v];
        mass[v] = 0;
      } else {
        res.ppr[v] += alpha * mass[v];
        remaining += mass[v];
      }
    }
    ++res.num_iterations;
    res.final_delta = (1.0 - alpha) * remaining;
    if (res.final_delta < tolerance) break;
    DoubleTensor moved = pt.spmv(mass);
#pragma omp parallel for schedule(static)
    for (std::size_t v = 0; v < n; ++v) {
      moved[v] *= (1.0 - alpha);
    }
    mass = std::move(moved);
  }
  return res;
}

PowerIterationResult power_iteration(const Graph& g, NodeId source,
                                     double alpha, double tolerance,
                                     std::size_t max_iterations) {
  return power_iteration(g, build_transition_matrix(g), source, alpha,
                         tolerance, max_iterations);
}

}  // namespace ppr
