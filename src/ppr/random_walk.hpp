// Distributed Random Walk over the Distributed Graph Storage — the second
// graph primitive of the paper's Figure 4. Fixed-length walks are tensor-
// friendly (static shapes), so this driver only needs the storage API plus
// bulk index operations; no C++ per-step operators are required.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/dist_storage.hpp"

namespace ppr {

struct RandomWalkOptions {
  int walk_length = 10;
  std::uint64_t seed = 1;
  /// Batch each step through the shared fetch pipeline: the walkers'
  /// neighbor rows resolve through the halo/adjacency caches where
  /// resident, at most one RPC per shard fetches the rest, and sampling
  /// happens client-side per walker. When false, every walker issues its
  /// own server-side sampling request every step — the unbatched
  /// baseline. Both modes draw from the same per-walker RNG stream, so
  /// they produce identical walks for a given seed.
  bool batch = true;
  /// Response compression for the batched mode (same switch as the SSPPR
  /// driver); ignored when batch is false.
  bool compress = true;
  /// Advance own-shard walkers while remote responses are in flight;
  /// ignored when batch is false. Either setting yields identical walks.
  bool overlap = true;
  /// Wire codec of the CSR response (same knob as DriverOptions::codec);
  /// ignored when batch is false. Walks are identical under either codec.
  WireCodec codec = WireCodec::kFlat;
  /// Graph version the walk reads at (same contract as
  /// DriverOptions::graph_version): resolved once, every step of every
  /// walker samples from that one snapshot.
  std::uint64_t graph_version = kVersionLatest;
};

struct RandomWalkResult {
  std::size_t num_walks = 0;
  int walk_length = 0;
  /// walks[i * walk_length + t] = global id visited by walker i at step t.
  std::vector<NodeId> walks;

  NodeId at(std::size_t walk, int step) const {
    return walks[walk * static_cast<std::size_t>(walk_length) +
                 static_cast<std::size_t>(step)];
  }
};

/// Run one walk per root. Roots are local ids of core nodes on this
/// process's own shard (owner-compute rule).
RandomWalkResult distributed_random_walk(const DistGraphStorage& g,
                                         std::span<const NodeId> root_locals,
                                         const RandomWalkOptions& options);

}  // namespace ppr
