// Distributed Random Walk over the Distributed Graph Storage — the second
// graph primitive of the paper's Figure 4. Fixed-length walks are tensor-
// friendly (static shapes), so this driver only needs the storage API plus
// bulk index operations; no C++ per-step operators are required.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/dist_storage.hpp"

namespace ppr {

struct RandomWalkOptions {
  int walk_length = 10;
  std::uint64_t seed = 1;
  /// Batch per-shard sampling requests (one RPC per shard per step). When
  /// false, every walker issues its own request every step — the
  /// unbatched baseline.
  bool batch = true;
};

struct RandomWalkResult {
  std::size_t num_walks = 0;
  int walk_length = 0;
  /// walks[i * walk_length + t] = global id visited by walker i at step t.
  std::vector<NodeId> walks;

  NodeId at(std::size_t walk, int step) const {
    return walks[walk * static_cast<std::size_t>(walk_length) +
                 static_cast<std::size_t>(step)];
  }
};

/// Run one walk per root. Roots are local ids of core nodes on this
/// process's own shard (owner-compute rule).
RandomWalkResult distributed_random_walk(const DistGraphStorage& g,
                                         std::span<const NodeId> root_locals,
                                         const RandomWalkOptions& options);

}  // namespace ppr
