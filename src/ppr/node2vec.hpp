// node2vec-style second-order biased random walk over the Distributed
// Graph Storage. The paper's motivating GNN methods include random-walk
// samplers (PinSage, GraphSAINT — its refs [29, 32]); node2vec's p/q
// biasing is the standard generalization of the uniform walk shipped in
// ppr/random_walk.hpp.
//
// Unlike the first-order walk, the transition at v depends on the
// previous node t: an edge (v, x) is reweighted by
//   1/p  if x == t              (return)
//   1    if x ∈ N(t)            (stay close — triangle edge)
//   1/q  otherwise               (explore)
// Because the bias needs v's full neighbor row AND membership in N(t),
// sampling happens client-side from batched get_neighbor_infos fetches —
// exactly the fetch machinery the SSPPR driver uses, demonstrating the
// engine's "easy integration of single-machine graph primitives".
#pragma once

#include <cstdint>
#include <vector>

#include "storage/dist_storage.hpp"

namespace ppr {

struct Node2vecOptions {
  int walk_length = 10;
  double p = 1.0;  // return parameter
  double q = 1.0;  // in-out parameter
  std::uint64_t seed = 1;
};

struct Node2vecResult {
  std::size_t num_walks = 0;
  int walk_length = 0;
  /// walks[i * walk_length + t] = packed NodeRef at step t of walk i.
  /// Translate to global ids with GlobalMapping::to_global (the walk
  /// itself never needs global ids, so it stays mapping-free).
  std::vector<std::uint64_t> walks;

  NodeRef at(std::size_t walk, int step) const {
    return NodeRef::from_key(
        walks[walk * static_cast<std::size_t>(walk_length) +
              static_cast<std::size_t>(step)]);
  }
};

/// One biased walk per root (roots are core-node local ids of this
/// process's shard).
Node2vecResult node2vec_walk(const DistGraphStorage& storage,
                             std::span<const NodeId> root_locals,
                             const Node2vecOptions& options);

}  // namespace ppr
