#include "ppr/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "common/check.hpp"

namespace ppr {

namespace {
std::vector<std::int64_t> topk_ids(std::span<const double> scores,
                                   std::size_t k) {
  std::vector<std::int64_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0);
  k = std::min(k, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [&](std::int64_t a, std::int64_t b) {
                      const double sa = scores[static_cast<std::size_t>(a)];
                      const double sb = scores[static_cast<std::size_t>(b)];
                      return sa != sb ? sa > sb : a < b;
                    });
  idx.resize(k);
  return idx;
}
}  // namespace

double topk_precision(std::span<const double> approx,
                      std::span<const double> exact, std::size_t k) {
  GE_REQUIRE(approx.size() == exact.size(), "vector size mismatch");
  GE_REQUIRE(k > 0, "k must be positive");
  const auto top_exact = topk_ids(exact, k);
  const auto top_approx = topk_ids(approx, k);
  const std::unordered_set<std::int64_t> exact_set(top_exact.begin(),
                                                   top_exact.end());
  std::size_t hits = 0;
  for (const auto id : top_approx) hits += exact_set.count(id);
  return static_cast<double>(hits) /
         static_cast<double>(std::min(k, approx.size()));
}

double l1_error(std::span<const double> approx,
                std::span<const double> exact) {
  GE_REQUIRE(approx.size() == exact.size(), "vector size mismatch");
  double d = 0;
  for (std::size_t i = 0; i < approx.size(); ++i) {
    d += std::abs(approx[i] - exact[i]);
  }
  return d;
}

double max_error(std::span<const double> approx,
                 std::span<const double> exact) {
  GE_REQUIRE(approx.size() == exact.size(), "vector size mismatch");
  double d = 0;
  for (std::size_t i = 0; i < approx.size(); ++i) {
    d = std::max(d, std::abs(approx[i] - exact[i]));
  }
  return d;
}

}  // namespace ppr
