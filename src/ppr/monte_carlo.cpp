#include "ppr/monte_carlo.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "ppr/forward_push.hpp"

namespace ppr {

namespace {
/// One walk with restart from `v`; returns the terminal node and
/// accumulates the step count.
NodeId walk_until_restart(const Graph& g, NodeId v, double alpha, Rng& rng,
                          std::size_t& steps) {
  for (;;) {
    if (g.degree(v) == 0 || g.weighted_degree(v) <= 0) return v;  // absorb
    if (rng.next_double() < alpha) return v;                      // restart
    // Weighted neighbor choice.
    const float target = rng.next_float(0.0f, g.weighted_degree(v));
    const auto nbrs = g.neighbors(v);
    const auto ws = g.edge_weights(v);
    float acc = 0;
    NodeId next = nbrs[nbrs.size() - 1];
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      acc += ws[k];
      if (acc >= target) {
        next = nbrs[k];
        break;
      }
    }
    v = next;
    ++steps;
  }
}
}  // namespace

MonteCarloResult monte_carlo_ppr(const Graph& g, NodeId source, double alpha,
                                 std::size_t num_walks, std::uint64_t seed) {
  GE_REQUIRE(source >= 0 && source < g.num_nodes(), "source out of range");
  GE_REQUIRE(num_walks > 0, "need at least one walk");
  GE_REQUIRE(alpha > 0 && alpha < 1, "alpha must be in (0,1)");
  MonteCarloResult res;
  res.ppr.assign(static_cast<std::size_t>(g.num_nodes()), 0.0);
  res.num_walks = num_walks;
  Rng rng(seed);
  const double unit = 1.0 / static_cast<double>(num_walks);
  for (std::size_t w = 0; w < num_walks; ++w) {
    const NodeId t = walk_until_restart(g, source, alpha, rng,
                                        res.total_steps);
    res.ppr[static_cast<std::size_t>(t)] += unit;
  }
  return res;
}

ForaResult fora_ppr(const Graph& g, NodeId source, double alpha,
                    double push_epsilon, double walks_per_unit_residual,
                    std::uint64_t seed) {
  GE_REQUIRE(walks_per_unit_residual > 0, "walk budget must be positive");
  ForaResult res;
  // Phase 1: cheap forward push leaves residual mass r with ‖r‖₁ ≤
  // ε·Σd_w spread over the frontier boundary.
  ForwardPushResult push =
      forward_push_sequential(g, source, alpha, push_epsilon);
  res.num_pushes = push.num_pushes;
  res.ppr = std::move(push.ppr);

  // Phase 2: for every node with leftover residual, launch walks whose
  // terminals are credited r(v)/W each — an unbiased estimate of where
  // the remaining probability mass settles (FORA's invariant:
  // π = π_push + Σ_v r(v)·π_v).
  Rng rng(seed);
  std::size_t steps = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const double rv = push.residual[static_cast<std::size_t>(v)];
    if (rv <= 0) continue;
    const auto walks = static_cast<std::size_t>(
        std::ceil(rv * walks_per_unit_residual));
    const double credit = rv / static_cast<double>(walks);
    for (std::size_t w = 0; w < walks; ++w) {
      const NodeId t = walk_until_restart(g, v, alpha, rng, steps);
      res.ppr[static_cast<std::size_t>(t)] += credit;
    }
    res.num_walks += walks;
  }
  return res;
}

}  // namespace ppr
