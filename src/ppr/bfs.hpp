// Distributed BFS over the Distributed Graph Storage.
//
// The paper motivates the engine with graph primitives beyond PPR — BFS
// (GraphSAGE-style neighborhood expansion) is its canonical example of an
// algorithm with a dynamic frontier that needs hashmap state and batched
// fetches rather than tensor ops. This driver reuses the same batching
// machinery as the SSPPR loop: one request per destination shard per
// level.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "storage/dist_storage.hpp"

namespace ppr {

struct BfsOptions {
  /// Stop after this many levels (-1 = run to exhaustion).
  int max_depth = -1;
  /// Response compression (same switch as the SSPPR driver).
  bool compress = true;
  /// Expand the own-shard frontier while remote responses are in flight
  /// (same switch as the SSPPR driver). Either setting yields identical
  /// results; the switch only changes when the waiting happens.
  bool overlap = true;
  /// Wire codec of the CSR response (same knob as DriverOptions::codec).
  WireCodec codec = WireCodec::kFlat;
  /// BFS only consumes neighbor ids, so the weight/degree floats can be
  /// dropped from remote responses entirely (fetch_weights = false).
  /// Traversal results are identical either way, but weightless rows
  /// never enter the adjacency cache, so the default keeps responses
  /// cache-feedable.
  bool fetch_weights = true;
  /// Graph version the traversal reads at (same contract as
  /// DriverOptions::graph_version): resolved once at admission, every
  /// level observes that one snapshot.
  std::uint64_t graph_version = kVersionLatest;
};

struct BfsResult {
  /// Visited nodes with their hop distance from the source set.
  std::vector<std::pair<NodeRef, int>> distances;
  std::size_t num_levels = 0;
  std::size_t num_visited = 0;
};

/// Multi-source BFS from `source_locals` (core nodes of this process's
/// shard, per the owner-compute rule).
BfsResult distributed_bfs(const DistGraphStorage& storage,
                          std::span<const NodeId> source_locals,
                          const BfsOptions& options = {});

/// Single-machine reference BFS on the full graph (for validation).
std::vector<int> bfs_reference(const Graph& g,
                               std::span<const NodeId> sources,
                               int max_depth = -1);

}  // namespace ppr
