// High-precision SSPPR via Power Iteration on the weighted transition
// matrix — the "DGL SpMM" baseline of Table 2 and the ground truth for
// accuracy checks (the paper uses tolerance 1e-10 and treats the result
// as exact).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "tensor/sparse.hpp"

namespace ppr {

struct PowerIterationResult {
  std::vector<double> ppr;
  std::size_t num_iterations = 0;
  double final_delta = 0;  // L1 change of the last iteration
};

/// Build the column-stochastic transition operator P^T as a CSR matrix:
/// row u holds W(v,u)/d_w(v) for every in-neighbor v. One matrix serves
/// all queries on the same graph (build once, iterate per source).
CsrMatrix build_transition_matrix(const Graph& g);

/// π ← α e_s + (1-α) P^T π until the L1 change falls below `tolerance`.
/// Dangling nodes retain their mass (walk stays in place), matching the
/// Forward Push convention.
PowerIterationResult power_iteration(const Graph& g, const CsrMatrix& pt,
                                     NodeId source, double alpha,
                                     double tolerance = 1e-10,
                                     std::size_t max_iterations = 10000);

/// Convenience overload that builds the operator internally.
PowerIterationResult power_iteration(const Graph& g, NodeId source,
                                     double alpha, double tolerance = 1e-10,
                                     std::size_t max_iterations = 10000);

}  // namespace ppr
