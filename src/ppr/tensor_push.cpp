#include "ppr/tensor_push.hpp"

namespace ppr {

TensorPushContext::TensorPushContext(const GlobalMapping& mapping,
                                     NodeId num_nodes,
                                     std::vector<float> dense_weighted_degrees)
    : dense_dw_(std::move(dense_weighted_degrees)),
      dw_(static_cast<std::size_t>(num_nodes)),
      shard_of_(static_cast<std::size_t>(num_nodes)),
      local_of_(static_cast<std::size_t>(num_nodes)) {
  GE_REQUIRE(dense_dw_.size() == static_cast<std::size_t>(num_nodes),
             "weighted degree table size mismatch");
  for (NodeId v = 0; v < num_nodes; ++v) {
    const NodeRef ref = mapping.to_ref(v);
    dw_[static_cast<std::size_t>(v)] =
        static_cast<double>(dense_dw_[static_cast<std::size_t>(v)]);
    shard_of_[static_cast<std::size_t>(v)] = ref.shard;
    local_of_[static_cast<std::size_t>(v)] = ref.local;
  }
  global_of_.reserve(static_cast<std::size_t>(mapping.num_shards()));
  for (int s = 0; s < mapping.num_shards(); ++s) {
    const auto globals = mapping.core_globals(s);
    global_of_.push_back(IntTensor::from_vector(
        std::vector<NodeId>(globals.begin(), globals.end())));
  }
}

namespace {

/// Materialize one shard group's decoded response as tensors (in the real
/// system these arrive as tensors from the RPC layer; rebuilding them here
/// models the concatenation the Python layer performs).
struct GroupTensors {
  IntTensor counts;         // per-source degree
  DoubleTensor src_dw;      // per-source weighted degree
  IntTensor edge_locals;    // flattened neighbor local ids
  IntTensor edge_shards;    // flattened neighbor shard ids
  DoubleTensor edge_weights;
};

template <typename Batch>
GroupTensors batch_to_tensors(const Batch& batch, std::size_t batch_size) {
  // Equivalent to ~5 torch ops (two stacks + three concatenations).
  for (int op = 0; op < 5; ++op) ops::detail::pay_dispatch();
  GroupTensors t;
  t.counts = IntTensor(batch_size);
  t.src_dw = DoubleTensor(batch_size);
  std::size_t total = 0;
  for (std::size_t i = 0; i < batch_size; ++i) {
    const VertexProp vp = batch[i];
    t.counts[i] = static_cast<std::int32_t>(vp.degree());
    t.src_dw[i] = vp.weighted_degree;
    total += vp.degree();
  }
  t.edge_locals = IntTensor(total);
  t.edge_shards = IntTensor(total);
  t.edge_weights = DoubleTensor(total);
  std::size_t pos = 0;
  for (std::size_t i = 0; i < batch_size; ++i) {
    const VertexProp vp = batch[i];
    for (std::size_t k = 0; k < vp.degree(); ++k) {
      t.edge_locals[pos] = vp.nbr_local_ids[k];
      t.edge_shards[pos] = vp.nbr_shard_ids[k];
      t.edge_weights[pos] = vp.edge_weights[k];
      ++pos;
    }
  }
  return t;
}

}  // namespace

TensorPushResult tensor_forward_push(const DistGraphStorage& storage,
                                     const TensorPushContext& ctx,
                                     NodeId source_global,
                                     const TensorPushOptions& options,
                                     PhaseTimers* timers) {
  GE_REQUIRE(source_global >= 0 && source_global < ctx.num_nodes(),
             "source out of range");
  const auto n = static_cast<std::size_t>(ctx.num_nodes());
  const int num_shards = storage.num_shards();
  PhaseTimers local_timers;
  PhaseTimers& t = timers != nullptr ? *timers : local_timers;

  TensorPushResult res;
  DoubleTensor p(n);
  DoubleTensor r(n);
  r[static_cast<std::size_t>(source_global)] = 1.0;
  // threshold = eps * d_w, one O(|V|) kernel amortized over the query.
  const DoubleTensor threshold = ops::mul(ctx.dw_tensor(), options.epsilon);

  for (;;) {
    // Activated-node retrieval: r > eps*d_w elementwise + nonzero — two
    // full dense kernels, each allocating. This is the step whose cost is
    // proportional to |V| (the tensor baseline's structural overhead).
    LongTensor active;
    {
      ScopedPhase phase(t, Phase::kPop);
      const BoolTensor mask = ops::greater(r, threshold);
      active = ops::nonzero(mask);
    }
    if (active.empty()) break;
    ++res.num_iterations;
    res.num_pushes += active.size();

    // mask_dict: per-shard masks + masked id selections (Figure 4).
    std::vector<LongTensor> globals_by_shard(
        static_cast<std::size_t>(num_shards));
    std::vector<IntTensor> locals_by_shard(
        static_cast<std::size_t>(num_shards));
    {
      ScopedPhase phase(t, Phase::kOther);
      const IntTensor act_shards =
          ops::index_select(ctx.shard_of_tensor(), active);
      const IntTensor act_locals =
          ops::index_select(ctx.local_of_tensor(), active);
      for (ShardId j = 0; j < num_shards; ++j) {
        const BoolTensor mj = ops::equal(act_shards, j);
        globals_by_shard[static_cast<std::size_t>(j)] =
            ops::masked_select(active, mj);
        locals_by_shard[static_cast<std::size_t>(j)] =
            ops::masked_select(act_locals, mj);
      }
    }

    // Issue all remote fetches asynchronously.
    std::vector<NeighborFetch> fetches(static_cast<std::size_t>(num_shards));
    {
      ScopedPhase phase(t, Phase::kRemoteFetch);
      for (ShardId j = 0; j < num_shards; ++j) {
        const auto& locals = locals_by_shard[static_cast<std::size_t>(j)];
        if (j == storage.shard_id() || locals.empty()) continue;
        fetches[static_cast<std::size_t>(j)] = storage.get_neighbor_infos_async(
            j, locals.span(), FetchOptions{.compress = options.compress});
      }
    }
    std::vector<NeighborBatch> batches(static_cast<std::size_t>(num_shards));
    if (!options.overlap) {
      // Wait for every response before local work so the breakdown
      // attributes time unambiguously (Fig. 6 protocol).
      ScopedPhase phase(t, Phase::kRemoteFetch);
      for (ShardId j = 0; j < num_shards; ++j) {
        if (fetches[static_cast<std::size_t>(j)].valid()) {
          batches[static_cast<std::size_t>(j)] =
              fetches[static_cast<std::size_t>(j)].wait();
        }
      }
    }

    // Local fetch through the serialize/decode path: the tensor baseline
    // receives its local neighbor info wrapped in tensors, which is what
    // makes its Local Fetch expensive in Fig. 6.
    NeighborBatch local_batch;
    const auto& own_locals =
        locals_by_shard[static_cast<std::size_t>(storage.shard_id())];
    {
      ScopedPhase phase(t, Phase::kLocalFetch);
      if (!own_locals.empty()) {
        local_batch = storage.get_neighbor_infos_local_serialized(
            own_locals.span(), FetchOptions{.compress = options.compress});
      }
    }

    // Push one shard group with pure tensor kernels.
    const auto push_group = [&](const LongTensor& globals,
                                const GroupTensors& g) {
      ScopedPhase phase(t, Phase::kPush);
      const DoubleTensor rv = ops::index_select(r, globals);
      ops::index_fill(r, globals, 0.0);

      const BoolTensor dangling = ops::equal(g.counts, 0);
      // π update: dangling nodes absorb all mass, others α·r.
      const DoubleTensor p_add =
          ops::where(dangling, rv, ops::mul(rv, options.alpha));
      ops::scatter_add(p, globals, p_add);

      if (g.edge_locals.empty()) return;
      // m = (1-α)·r / d_w per source (0 for dangling), expanded per edge.
      const DoubleTensor zeros(rv.size());
      const DoubleTensor m = ops::where(
          dangling, zeros,
          ops::div(ops::mul(rv, 1.0 - options.alpha), g.src_dw));
      const DoubleTensor m_per_edge = ops::repeat_interleave(m, g.counts);
      // Neighbor <local, shard> -> global via the per-shard id tables.
      ops::detail::pay_dispatch();  // per-shard-table gather op
      LongTensor edge_globals(g.edge_locals.size());
      for (std::size_t e = 0; e < g.edge_locals.size(); ++e) {
        edge_globals[e] = ctx.globals_of_shard(g.edge_shards[e])
            [static_cast<std::size_t>(g.edge_locals[e])];
      }
      const DoubleTensor edge_vals = ops::mul(m_per_edge, g.edge_weights);
      ops::scatter_add(r, edge_globals, edge_vals);
    };

    if (!own_locals.empty()) {
      GroupTensors g;
      {
        ScopedPhase phase(t, Phase::kLocalFetch);
        g = batch_to_tensors(local_batch, local_batch.size());
      }
      push_group(
          globals_by_shard[static_cast<std::size_t>(storage.shard_id())], g);
    }
    for (ShardId j = 0; j < num_shards; ++j) {
      const auto& locals = locals_by_shard[static_cast<std::size_t>(j)];
      if (j == storage.shard_id() || locals.empty()) continue;
      if (options.overlap) {
        ScopedPhase phase(t, Phase::kRemoteFetch);
        batches[static_cast<std::size_t>(j)] =
            fetches[static_cast<std::size_t>(j)].wait();
      }
      GroupTensors g;
      {
        ScopedPhase phase(t, Phase::kRemoteFetch);
        g = batch_to_tensors(batches[static_cast<std::size_t>(j)],
                             batches[static_cast<std::size_t>(j)].size());
      }
      push_group(globals_by_shard[static_cast<std::size_t>(j)], g);
    }
  }
  res.ppr = p.take();
  return res;
}

}  // namespace ppr
