#include "ppr/ssppr_state.hpp"

#include <algorithm>
#include <atomic>

#include "common/simd.hpp"
#include "obs/metrics.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ppr {

const char* kernel_name(SspprKernel k) {
  switch (k) {
    case SspprKernel::kSparse:
      return "sparse";
    case SspprKernel::kDense:
      return "dense";
    case SspprKernel::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

BufferPool& SspprState::scratch_pool() {
  // Attaching metrics forces MetricRegistry::global() to outlive the pool
  // (same ordering trick as BufferPool::global()).
  static BufferPool pool(64, /*register_metrics=*/true, "ppr.scratch_pool");
  return pool;
}

SspprState::SspprState(NodeRef source, SspprOptions options)
    : source_(source),
      options_(std::move(options)),
      pi_(options_.submap_bits),
      residual_(options_.submap_bits) {
  GE_REQUIRE(options_.alpha > 0 && options_.alpha < 1,
             "alpha must be in (0,1)");
  GE_REQUIRE(options_.epsilon > 0, "epsilon must be positive");
  GE_REQUIRE(options_.num_threads >= 1, "num_threads must be >= 1");
  GE_REQUIRE(options_.dense_threshold > 0 && options_.dense_threshold <= 1,
             "dense_threshold must be in (0,1]");
  if (!options_.shard_core_counts.empty()) {
    bind_topology(options_.shard_core_counts);
  }
  seed(source);
}

void SspprState::seed(NodeRef source) {
  source_ = source;
  const std::uint64_t key = source.key();
  residual_.upsert(key, [](Residual& e) {
    e.r = 1.0;
    e.in_frontier = true;
  });
  activated_.push_back(key);
  // A forced-dense kernel lives in the arrays from the very first round.
  if (options_.kernel == SspprKernel::kDense) promote_to_dense();
}

void SspprState::reset(NodeRef source) {
  pi_.clear();
  residual_.clear();
  activated_.clear();
  num_pushes_ = 0;
  last_density_ = 0.0;
  promotions_ = 0;
  demotions_ = 0;
  if (dense_) {
    std::fill(dense_pi_.begin(), dense_pi_.end(), 0.0);
    std::fill(dense_r_.begin(), dense_r_.end(), 0.0);
    std::fill(frontier_bits_.begin(), frontier_bits_.end(), 0u);
    dense_ = false;
  }
  seed(source);
}

void SspprState::bind_topology(std::span<const NodeId> shard_core_counts) {
  if (shard_core_counts.empty()) return;
  if (!shard_counts_.empty()) {
    if (std::equal(shard_counts_.begin(), shard_counts_.end(),
                   shard_core_counts.begin(), shard_core_counts.end())) {
      return;  // idempotent rebind of the same topology
    }
    GE_REQUIRE(!dense_,
               "cannot rebind a different topology while the state is dense");
  }
  std::size_t total = 0;
  for (const NodeId c : shard_core_counts) {
    GE_REQUIRE(c >= 0, "shard_core_counts must be non-negative");
    total += static_cast<std::size_t>(c);
  }
  GE_REQUIRE(total > 0, "topology must contain at least one core node");
  shard_counts_.assign(shard_core_counts.begin(), shard_core_counts.end());
  shard_base_.resize(shard_counts_.size() + 1);
  shard_base_[0] = 0;
  for (std::size_t s = 0; s < shard_counts_.size(); ++s) {
    shard_base_[s + 1] =
        shard_base_[s] + static_cast<std::size_t>(shard_counts_[s]);
  }
  universe_ = total;
  // Any previously sized dense arrays are stale for the new layout; they
  // are all-zero (sparse-mode invariant), so dropping them is loss-free
  // and ensure_dense_storage() re-sizes on the next promotion.
  if (dense_pi_.size() != universe_) {
    dense_pi_.clear();
    dense_r_.clear();
    frontier_bits_.clear();
  }
}

void SspprState::ensure_dense_storage() {
  if (dense_pi_.size() == universe_) return;
  dense_pi_.assign(universe_, 0.0);
  dense_r_.assign(universe_, 0.0);
  frontier_bits_.assign((universe_ + 63) / 64, 0u);
}

void SspprState::promote_to_dense() {
  if (dense_) return;
  GE_REQUIRE(dense_capable(),
             "dense kernel requires a bound shard topology "
             "(SspprOptions::shard_core_counts or bind_topology)");
  ensure_dense_storage();
  residual_.for_each([&](std::uint64_t key, const Residual& e) {
    const std::size_t s = slot_for_key(key);
    dense_r_[s] = e.r;
    if (e.in_frontier) frontier_bits_[s >> 6] |= std::uint64_t{1} << (s & 63);
  });
  pi_.for_each([&](std::uint64_t key, const double& v) {
    dense_pi_[slot_for_key(key)] = v;
  });
  pi_.clear();
  residual_.clear();
  dense_ = true;
  ++promotions_;
  static obs::Counter& promoted =
      obs::MetricRegistry::global().counter("ssppr.kernel_promotions");
  promoted.add(1);
}

void SspprState::demote_to_sparse() {
  if (!dense_) return;
  // Slot order is ascending-key order, so re-insertion is deterministic.
  // Entries with r == 0 and a clear frontier bit carry no information
  // (π-only slots keep their π entry); dropping them is loss-free.
  for (std::size_t shard = 0; shard < shard_counts_.size(); ++shard) {
    const std::size_t base = shard_base_[shard];
    const auto cnt = static_cast<std::size_t>(shard_counts_[shard]);
    for (std::size_t local = 0; local < cnt; ++local) {
      const std::size_t s = base + local;
      const double r = dense_r_[s];
      const bool fb = frontier_bit(s);
      const double v = dense_pi_[s];
      if (r != 0.0 || fb || v != 0.0) {
        const std::uint64_t key =
            NodeRef{static_cast<NodeId>(local), static_cast<ShardId>(shard)}
                .key();
        if (r != 0.0 || fb) {
          residual_.upsert(key, [&](Residual& e) {
            e.r = r;
            e.in_frontier = fb;
          });
        }
        if (v != 0.0) {
          pi_.upsert(key, [&](double& p) { p = v; });
        }
      }
    }
  }
  std::fill(dense_pi_.begin(), dense_pi_.end(), 0.0);
  std::fill(dense_r_.begin(), dense_r_.end(), 0.0);
  std::fill(frontier_bits_.begin(), frontier_bits_.end(), 0u);
  dense_ = false;
  ++demotions_;
  static obs::Counter& demoted =
      obs::MetricRegistry::global().counter("ssppr.kernel_demotions");
  demoted.add(1);
}

void SspprState::record_pop_metrics() const {
  auto& reg = obs::MetricRegistry::global();
  static obs::Counter& mode_sparse =
      reg.counter("ssppr.kernel_mode", {{"mode", "sparse"}});
  static obs::Counter& mode_dense =
      reg.counter("ssppr.kernel_mode", {{"mode", "dense"}});
  static obs::Histogram& density = reg.histogram("ssppr.round_density");
  (dense_ ? mode_dense : mode_sparse).add(1);
  if (dense_capable()) {
    // Densities are fractions; the log-bucketed histogram stores them in
    // parts-per-million.
    density.record(static_cast<std::uint64_t>(last_density_ * 1e6));
  }
}

void SspprState::pop(std::vector<NodeId>& node_ids,
                     std::vector<ShardId>& shard_ids) {
  const std::size_t fsz = activated_.size();
  last_density_ = dense_capable() ? static_cast<double>(fsz) /
                                        static_cast<double>(universe_)
                                  : 0.0;
  // The round boundary: switch representation for the coming push round.
  // An empty frontier means the query is over — never switch on it.
  if (options_.kernel == SspprKernel::kAdaptive && dense_capable() &&
      fsz != 0) {
    if (!dense_ && last_density_ >= options_.dense_threshold) {
      promote_to_dense();
    } else if (dense_ && last_density_ <
                             options_.dense_threshold * kDemoteHysteresis) {
      demote_to_sparse();
    }
  }
  record_pop_metrics();
  node_ids.resize(fsz);
  shard_ids.resize(fsz);
  for (std::size_t i = 0; i < fsz; ++i) {
    const NodeRef ref = NodeRef::from_key(activated_[i]);
    node_ids[i] = ref.local;
    shard_ids[i] = ref.shard;
  }
  activated_.clear();
}

template <typename RowFn>
void SspprState::push_rows(RowFn&& row, std::span<const NodeId> node_ids,
                           std::span<const ShardId> shard_ids) {
  const std::size_t n = node_ids.size();
  GE_REQUIRE(shard_ids.size() == n, "push batch size mismatch");
  if (n == 0) return;
  num_pushes_ += n;

  const double alpha = options_.alpha;
  const double eps = options_.epsilon;
  const bool dense = dense_;

  // Per the paper's "simple strategy": multi-thread only large batches.
  int num_threads = 1;
#ifdef _OPENMP
  if (n >= options_.parallel_threshold && options_.num_threads > 1) {
    num_threads = options_.num_threads;
  }
#endif

  // Round scratch comes from the recycled pool, so steady-state pushes
  // perform no allocations in either kernel mode (audited through
  // ppr.scratch_pool.* by the batch-driver test).
  BufferPool& pool = scratch_pool();
  std::vector<std::uint8_t> rv_buf = pool.acquire(n * sizeof(double));
  rv_buf.resize(n * sizeof(double));
  double* const rv = reinterpret_cast<double*>(rv_buf.data());
  std::fill(rv, rv + n, 0.0);

  // Dense single-threaded rounds precompute each row's residual deltas
  // (w·m) and activation thresholds (ε·d_w) into one 2·maxdeg scratch row
  // through the vectorized widen_mul — the same single IEEE multiply the
  // scalar path performs, so results are bit-identical at every SIMD
  // level. The multi-threaded path keeps the inline scalar products (same
  // bits, no per-thread scratch).
  std::vector<std::uint8_t> row_buf;
  double* row_scratch = nullptr;
  std::size_t maxdeg = 0;
  if (dense && num_threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      maxdeg = std::max(maxdeg, row(i).degree());
    }
    row_buf = pool.acquire(2 * maxdeg * sizeof(double));
    row_buf.resize(2 * maxdeg * sizeof(double));
    row_scratch = reinterpret_cast<double*>(row_buf.data());
  }

  // The owner-partitioned update runs in two barrier-separated steps so
  // residual reads in step 2 never race with the zeroing in step 1:
  //   step 1: the owner of source v's submap drains r(v), updates π(v);
  //   step 2: every thread scans all (source, neighbor) deltas but applies
  //           only those landing in submaps it owns — lock-free. The dense
  //           kernel uses the same submap ownership function, so the
  //           per-thread work (and activation order) matches exactly.
  const auto step1_sparse = [&](std::size_t i) {
    const std::uint64_t key = NodeRef{node_ids[i], shard_ids[i]}.key();
    const std::size_t idx = residual_.submap_index(key);
    Residual& e = residual_.submap(idx)[key];
    const double r = e.r;
    e.r = 0;
    e.in_frontier = false;
    if (r == 0) {
      rv[i] = 0;
      return;
    }
    double& pi = pi_.submap(idx)[key];
    const VertexProp vp = row(i);
    if (vp.degree() == 0 || vp.weighted_degree <= 0) {
      // Dangling node: the walk can go nowhere, so all mass settles here.
      pi += r;
      rv[i] = 0;
    } else {
      pi += alpha * r;
      rv[i] = r;
    }
  };

  const auto step1_dense = [&](std::size_t i, bool mt) {
    const std::size_t s = slot_for(shard_ids[i], node_ids[i]);
    const double r = dense_r_[s];
    dense_r_[s] = 0.0;
    const std::uint64_t bit = std::uint64_t{1} << (s & 63);
    if (mt) {
      // Bitmap words are shared across owner threads; the bit itself is
      // touched only by its owner, but the word RMW must be atomic.
      std::atomic_ref<std::uint64_t>(frontier_bits_[s >> 6])
          .fetch_and(~bit, std::memory_order_relaxed);
    } else {
      frontier_bits_[s >> 6] &= ~bit;
    }
    if (r == 0) {
      rv[i] = 0;
      return;
    }
    const VertexProp vp = row(i);
    if (vp.degree() == 0 || vp.weighted_degree <= 0) {
      dense_pi_[s] += r;
      rv[i] = 0;
    } else {
      dense_pi_[s] += alpha * r;
      rv[i] = r;
    }
  };

  const auto step2_sparse = [&](std::size_t i, std::size_t tid,
                                std::size_t nt,
                                std::vector<std::uint64_t>& activated_out) {
    if (rv[i] == 0) return;
    const VertexProp vp = row(i);
    const double m = (1.0 - alpha) * rv[i] / vp.weighted_degree;
    for (std::size_t k = 0; k < vp.degree(); ++k) {
      const std::uint64_t key_u =
          NodeRef{vp.nbr_local_ids[k], vp.nbr_shard_ids[k]}.key();
      const std::size_t idx = residual_.submap_index(key_u);
      if (nt > 1 && idx % nt != tid) continue;
      Residual& e = residual_.submap(idx)[key_u];
      e.r += static_cast<double>(vp.edge_weights[k]) * m;
      if (!e.in_frontier &&
          e.r > eps * static_cast<double>(vp.nbr_weighted_degrees[k])) {
        e.in_frontier = true;
        activated_out.push_back(key_u);
      }
    }
  };

  const auto step2_dense_st = [&](std::size_t i) {
    if (rv[i] == 0) return;
    const VertexProp vp = row(i);
    const std::size_t deg = vp.degree();
    const double m = (1.0 - alpha) * rv[i] / vp.weighted_degree;
    double* const add = row_scratch;
    double* const thr = row_scratch + deg;
    simd::widen_mul(vp.edge_weights.data(), deg, m, add);
    simd::widen_mul(vp.nbr_weighted_degrees.data(), deg, eps, thr);
    for (std::size_t k = 0; k < deg; ++k) {
      const std::size_t su =
          slot_for(vp.nbr_shard_ids[k], vp.nbr_local_ids[k]);
      const double nr = dense_r_[su] + add[k];
      dense_r_[su] = nr;
      const std::uint64_t bit = std::uint64_t{1} << (su & 63);
      if (!(frontier_bits_[su >> 6] & bit) && nr > thr[k]) {
        frontier_bits_[su >> 6] |= bit;
        activated_.push_back(
            NodeRef{vp.nbr_local_ids[k], vp.nbr_shard_ids[k]}.key());
      }
    }
  };

  const auto step2_dense_mt = [&](std::size_t i, std::size_t tid,
                                  std::size_t nt,
                                  std::vector<std::uint64_t>& activated_out) {
    if (rv[i] == 0) return;
    const VertexProp vp = row(i);
    const double m = (1.0 - alpha) * rv[i] / vp.weighted_degree;
    for (std::size_t k = 0; k < vp.degree(); ++k) {
      const std::uint64_t key_u =
          NodeRef{vp.nbr_local_ids[k], vp.nbr_shard_ids[k]}.key();
      if (residual_.submap_index(key_u) % nt != tid) continue;
      const std::size_t su =
          slot_for(vp.nbr_shard_ids[k], vp.nbr_local_ids[k]);
      const double nr =
          dense_r_[su] + static_cast<double>(vp.edge_weights[k]) * m;
      dense_r_[su] = nr;
      const std::uint64_t bit = std::uint64_t{1} << (su & 63);
      std::atomic_ref<std::uint64_t> word(frontier_bits_[su >> 6]);
      if (!(word.load(std::memory_order_relaxed) & bit) &&
          nr > eps * static_cast<double>(vp.nbr_weighted_degrees[k])) {
        word.fetch_or(bit, std::memory_order_relaxed);
        activated_out.push_back(key_u);
      }
    }
  };

  if (num_threads <= 1) {
    if (dense) {
      for (std::size_t i = 0; i < n; ++i) step1_dense(i, false);
      for (std::size_t i = 0; i < n; ++i) step2_dense_st(i);
    } else {
      for (std::size_t i = 0; i < n; ++i) step1_sparse(i);
      for (std::size_t i = 0; i < n; ++i) step2_sparse(i, 0, 1, activated_);
    }
    pool.release(std::move(rv_buf));
    pool.release(std::move(row_buf));
    return;
  }

#ifdef _OPENMP
  if (mt_activated_.size() < static_cast<std::size_t>(num_threads)) {
    mt_activated_.resize(static_cast<std::size_t>(num_threads));
  }
#pragma omp parallel num_threads(num_threads)
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    const auto nt = static_cast<std::size_t>(omp_get_num_threads());
    std::vector<std::uint64_t>& local_activated = mt_activated_[tid];
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = NodeRef{node_ids[i], shard_ids[i]}.key();
      if (residual_.submap_index(key) % nt == tid) {
        if (dense) {
          step1_dense(i, true);
        } else {
          step1_sparse(i);
        }
      }
    }
#pragma omp barrier
    for (std::size_t i = 0; i < n; ++i) {
      if (dense) {
        step2_dense_mt(i, tid, nt, local_activated);
      } else {
        step2_sparse(i, tid, nt, local_activated);
      }
    }
  }
  // Merge in thread-id order (not first-done order): the activation
  // sequence is deterministic and identical between kernel modes.
  for (std::vector<std::uint64_t>& local : mt_activated_) {
    activated_.insert(activated_.end(), local.begin(), local.end());
    local.clear();
  }
#endif
  pool.release(std::move(rv_buf));
  pool.release(std::move(row_buf));
}

void SspprState::push(std::span<const VertexProp> infos,
                      std::span<const NodeId> node_ids,
                      std::span<const ShardId> shard_ids) {
  GE_REQUIRE(infos.size() == node_ids.size(), "push batch size mismatch");
  push_rows([&](std::size_t i) { return infos[i]; }, node_ids, shard_ids);
}

void SspprState::push(const NeighborBatch& batch,
                      std::span<const NodeId> node_ids,
                      std::span<const ShardId> shard_ids) {
  GE_REQUIRE(batch.size() == node_ids.size(), "push batch size mismatch");
  push_rows([&](std::size_t i) { return batch[i]; }, node_ids, shard_ids);
}

std::vector<std::pair<NodeRef, double>> SspprState::ppr_entries() const {
  std::vector<std::pair<NodeRef, double>> out;
  if (dense_) {
    for (std::size_t shard = 0; shard < shard_counts_.size(); ++shard) {
      const std::size_t base = shard_base_[shard];
      const auto cnt = static_cast<std::size_t>(shard_counts_[shard]);
      for (std::size_t local = 0; local < cnt; ++local) {
        const double v = dense_pi_[base + local];
        if (v > 0) {
          out.emplace_back(NodeRef{static_cast<NodeId>(local),
                                   static_cast<ShardId>(shard)},
                           v);
        }
      }
    }
    return out;
  }
  pi_.for_each([&](std::uint64_t key, const double& v) {
    if (v > 0) out.emplace_back(NodeRef::from_key(key), v);
  });
  return out;
}

std::vector<std::pair<NodeRef, double>> SspprState::residual_entries() const {
  std::vector<std::pair<NodeRef, double>> out;
  if (dense_) {
    for (std::size_t shard = 0; shard < shard_counts_.size(); ++shard) {
      const std::size_t base = shard_base_[shard];
      const auto cnt = static_cast<std::size_t>(shard_counts_[shard]);
      for (std::size_t local = 0; local < cnt; ++local) {
        const double r = dense_r_[base + local];
        if (r > 0) {
          out.emplace_back(NodeRef{static_cast<NodeId>(local),
                                   static_cast<ShardId>(shard)},
                           r);
        }
      }
    }
    return out;
  }
  residual_.for_each([&](std::uint64_t key, const Residual& e) {
    if (e.r > 0) out.emplace_back(NodeRef::from_key(key), e.r);
  });
  return out;
}

std::vector<double> SspprState::to_dense(const GlobalMapping& mapping,
                                         NodeId num_nodes) const {
  std::vector<double> dense(static_cast<std::size_t>(num_nodes), 0.0);
  for (const auto& [ref, v] : ppr_entries()) {
    dense[static_cast<std::size_t>(mapping.to_global(ref))] = v;
  }
  return dense;
}

double SspprState::total_mass() const {
  double mass = 0;
  if (dense_) {
    // Slot order == ascending packed-key order; π before r per node.
    for (std::size_t s = 0; s < universe_; ++s) {
      mass += dense_pi_[s];
      mass += dense_r_[s];
    }
    return mass;
  }
  // Canonical ascending-key union (π before r per key) so the sum is
  // bit-identical to the dense slot scan: skipped zero entries are exact
  // no-ops for a sum of non-negative terms.
  std::vector<std::pair<std::uint64_t, double>> pis;
  std::vector<std::pair<std::uint64_t, double>> rs;
  pi_.for_each([&](std::uint64_t key, const double& v) {
    if (v != 0) pis.emplace_back(key, v);
  });
  residual_.for_each([&](std::uint64_t key, const Residual& e) {
    if (e.r != 0) rs.emplace_back(key, e.r);
  });
  const auto by_key = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(pis.begin(), pis.end(), by_key);
  std::sort(rs.begin(), rs.end(), by_key);
  std::size_t ip = 0;
  std::size_t ir = 0;
  while (ip < pis.size() || ir < rs.size()) {
    if (ir >= rs.size() ||
        (ip < pis.size() && pis[ip].first <= rs[ir].first)) {
      mass += pis[ip++].second;
    } else {
      mass += rs[ir++].second;
    }
  }
  return mass;
}

}  // namespace ppr
