#include "ppr/ssppr_state.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ppr {

SspprState::SspprState(NodeRef source, SspprOptions options)
    : source_(source),
      options_(options),
      pi_(options.submap_bits),
      residual_(options.submap_bits) {
  GE_REQUIRE(options_.alpha > 0 && options_.alpha < 1,
             "alpha must be in (0,1)");
  GE_REQUIRE(options_.epsilon > 0, "epsilon must be positive");
  GE_REQUIRE(options_.num_threads >= 1, "num_threads must be >= 1");
  const std::uint64_t key = source.key();
  residual_.upsert(key, [](Residual& e) {
    e.r = 1.0;
    e.in_frontier = true;
  });
  activated_.push_back(key);
}

void SspprState::reset(NodeRef source) {
  source_ = source;
  pi_.clear();
  residual_.clear();
  activated_.clear();
  num_pushes_ = 0;
  const std::uint64_t key = source.key();
  residual_.upsert(key, [](Residual& e) {
    e.r = 1.0;
    e.in_frontier = true;
  });
  activated_.push_back(key);
}

void SspprState::pop(std::vector<NodeId>& node_ids,
                     std::vector<ShardId>& shard_ids) {
  node_ids.resize(activated_.size());
  shard_ids.resize(activated_.size());
  for (std::size_t i = 0; i < activated_.size(); ++i) {
    const NodeRef ref = NodeRef::from_key(activated_[i]);
    node_ids[i] = ref.local;
    shard_ids[i] = ref.shard;
  }
  activated_.clear();
}

template <typename RowFn>
void SspprState::push_rows(RowFn&& row, std::span<const NodeId> node_ids,
                           std::span<const ShardId> shard_ids) {
  const std::size_t n = node_ids.size();
  GE_REQUIRE(shard_ids.size() == n, "push batch size mismatch");
  if (n == 0) return;
  num_pushes_ += n;

  const double alpha = options_.alpha;
  const double eps = options_.epsilon;
  std::vector<double> rv(n, 0.0);

  // Per the paper's "simple strategy": multi-thread only large batches.
  int num_threads = 1;
#ifdef _OPENMP
  if (n >= options_.parallel_threshold && options_.num_threads > 1) {
    num_threads = options_.num_threads;
  }
#endif

  // The owner-partitioned update runs in two barrier-separated steps so
  // residual reads in step 2 never race with the zeroing in step 1:
  //   step 1: the owner of source v's submap drains r(v), updates π(v);
  //   step 2: every thread scans all (source, neighbor) deltas but applies
  //           only those landing in submaps it owns — lock-free.
  const auto step1 = [&](std::size_t i) {
    const std::uint64_t key =
        NodeRef{node_ids[i], shard_ids[i]}.key();
    const std::size_t idx = residual_.submap_index(key);
    Residual& e = residual_.submap(idx)[key];
    const double r = e.r;
    e.r = 0;
    e.in_frontier = false;
    if (r == 0) {
      rv[i] = 0;
      return;
    }
    double& pi = pi_.submap(idx)[key];
    const VertexProp vp = row(i);
    if (vp.degree() == 0 || vp.weighted_degree <= 0) {
      // Dangling node: the walk can go nowhere, so all mass settles here.
      pi += r;
      rv[i] = 0;
    } else {
      pi += alpha * r;
      rv[i] = r;
    }
  };

  const auto step2 = [&](std::size_t i, std::size_t tid, std::size_t nt,
                         std::vector<std::uint64_t>& activated_out) {
    if (rv[i] == 0) return;
    const VertexProp vp = row(i);
    const double m = (1.0 - alpha) * rv[i] / vp.weighted_degree;
    for (std::size_t k = 0; k < vp.degree(); ++k) {
      const std::uint64_t key_u =
          NodeRef{vp.nbr_local_ids[k], vp.nbr_shard_ids[k]}.key();
      const std::size_t idx = residual_.submap_index(key_u);
      if (nt > 1 && idx % nt != tid) continue;
      Residual& e = residual_.submap(idx)[key_u];
      e.r += static_cast<double>(vp.edge_weights[k]) * m;
      if (!e.in_frontier &&
          e.r > eps * static_cast<double>(vp.nbr_weighted_degrees[k])) {
        e.in_frontier = true;
        activated_out.push_back(key_u);
      }
    }
  };

  if (num_threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) step1(i);
    for (std::size_t i = 0; i < n; ++i) step2(i, 0, 1, activated_);
    return;
  }

#ifdef _OPENMP
#pragma omp parallel num_threads(num_threads)
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    const auto nt = static_cast<std::size_t>(omp_get_num_threads());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key =
          NodeRef{node_ids[i], shard_ids[i]}.key();
      if (residual_.submap_index(key) % nt == tid) step1(i);
    }
#pragma omp barrier
    std::vector<std::uint64_t> local_activated;
    for (std::size_t i = 0; i < n; ++i) step2(i, tid, nt, local_activated);
#pragma omp critical(ssppr_activated_merge)
    activated_.insert(activated_.end(), local_activated.begin(),
                      local_activated.end());
  }
#endif
}

void SspprState::push(std::span<const VertexProp> infos,
                      std::span<const NodeId> node_ids,
                      std::span<const ShardId> shard_ids) {
  GE_REQUIRE(infos.size() == node_ids.size(), "push batch size mismatch");
  push_rows([&](std::size_t i) { return infos[i]; }, node_ids, shard_ids);
}

void SspprState::push(const NeighborBatch& batch,
                      std::span<const NodeId> node_ids,
                      std::span<const ShardId> shard_ids) {
  GE_REQUIRE(batch.size() == node_ids.size(), "push batch size mismatch");
  push_rows([&](std::size_t i) { return batch[i]; }, node_ids, shard_ids);
}

std::vector<std::pair<NodeRef, double>> SspprState::ppr_entries() const {
  std::vector<std::pair<NodeRef, double>> out;
  pi_.for_each([&](std::uint64_t key, const double& v) {
    if (v > 0) out.emplace_back(NodeRef::from_key(key), v);
  });
  return out;
}

std::vector<std::pair<NodeRef, double>> SspprState::residual_entries() const {
  std::vector<std::pair<NodeRef, double>> out;
  residual_.for_each([&](std::uint64_t key, const Residual& e) {
    if (e.r > 0) out.emplace_back(NodeRef::from_key(key), e.r);
  });
  return out;
}

std::vector<double> SspprState::to_dense(const GlobalMapping& mapping,
                                         NodeId num_nodes) const {
  std::vector<double> dense(static_cast<std::size_t>(num_nodes), 0.0);
  pi_.for_each([&](std::uint64_t key, const double& v) {
    dense[static_cast<std::size_t>(
        mapping.to_global(NodeRef::from_key(key)))] = v;
  });
  return dense;
}

double SspprState::total_mass() const {
  double mass = 0;
  pi_.for_each([&](std::uint64_t, const double& v) { mass += v; });
  residual_.for_each(
      [&](std::uint64_t, const Residual& e) { mass += e.r; });
  return mass;
}

}  // namespace ppr
