// Monte-Carlo SSPPR estimators (§2.2.1's third method family) and the
// FORA-style hybrid (Wang et al., the paper's reference [25] defining
// approximate whole-graph SSPPR):
//
//   * monte_carlo_ppr — simulate W random walks with restart from the
//     source; π(v) is estimated by the fraction of walks terminating at
//     v. Unbiased but high-variance, as the paper notes.
//   * fora_ppr — Forward Push with a coarse ε, then residual-weighted
//     random walks to refine the tail: each remaining unit of residual
//     r(v) launches walks from v whose terminal mass is credited to π.
//     Combines push's efficiency with MC's unbiased tail.
//
// Both run on the full single-machine graph (they are accuracy/efficiency
// baselines, like power iteration).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ppr {

struct MonteCarloResult {
  std::vector<double> ppr;
  std::size_t num_walks = 0;
  std::size_t total_steps = 0;
};

/// Pure Monte-Carlo estimate from `num_walks` walks with restart
/// probability `alpha` (each step the walk terminates w.p. α, else moves
/// to a weighted random neighbor; dangling nodes absorb).
MonteCarloResult monte_carlo_ppr(const Graph& g, NodeId source, double alpha,
                                 std::size_t num_walks, std::uint64_t seed);

struct ForaResult {
  std::vector<double> ppr;
  std::size_t num_pushes = 0;
  std::size_t num_walks = 0;
};

/// FORA-style hybrid: Forward Push at `push_epsilon`, then
/// `walks_per_unit_residual` × (total residual) random walks distributed
/// over the residual vector proportionally to r(v).
ForaResult fora_ppr(const Graph& g, NodeId source, double alpha,
                    double push_epsilon, double walks_per_unit_residual,
                    std::uint64_t seed);

}  // namespace ppr
