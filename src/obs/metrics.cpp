#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace ppr::obs {

std::string metric_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string key = name;
  key += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += ',';
    key += labels[i].first;
    key += '=';
    key += labels[i].second;
  }
  key += '}';
  return key;
}

namespace {

/// Family name of a key: everything before the label block.
std::string family_of(const std::string& key) {
  const auto brace = key.find('{');
  return brace == std::string::npos ? key : key.substr(0, brace);
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

}  // namespace

Registration& Registration::operator=(Registration&& other) noexcept {
  if (this != &other) {
    detach();
    registry_ = other.registry_;
    key_ = std::move(other.key_);
    metric_ = other.metric_;
    other.registry_ = nullptr;
    other.metric_ = nullptr;
  }
  return *this;
}

void Registration::detach() {
  if (registry_ != nullptr && metric_ != nullptr) {
    registry_->detach(key_, metric_);
  }
  registry_ = nullptr;
  metric_ = nullptr;
}

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry registry;
  return registry;
}

Registration MetricRegistry::attach(const std::string& name,
                                    const Labels& labels, Metric& metric) {
  std::string key = metric_key(name, labels);
  {
    std::lock_guard<std::mutex> g(mu_);
    live_[key].push_back(&metric);
  }
  return Registration(this, std::move(key), &metric);
}

void MetricRegistry::detach(const std::string& key, Metric* metric) {
  std::lock_guard<std::mutex> g(mu_);
  const auto it = live_.find(key);
  if (it == live_.end()) return;
  auto& v = it->second;
  const auto pos = std::find(v.begin(), v.end(), metric);
  if (pos == v.end()) return;
  v.erase(pos);
  // Fold the departing instrument's final value into the retired totals so
  // process-wide counts keep including it. Gauges are point-in-time and
  // simply disappear.
  if (metric->kind() == MetricKind::kGauge) return;
  Retired& r = retired_[key];
  r.kind = metric->kind();
  if (metric->kind() == MetricKind::kCounter) {
    r.counter += metric->value_u64();
  } else {
    r.hist.merge(metric->value_hist());
  }
}

Counter& MetricRegistry::counter(const std::string& name,
                                 const Labels& labels) {
  const std::string key = metric_key(name, labels);
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = owned_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
    live_[key].push_back(slot.get());
  }
  return static_cast<Counter&>(*slot);
}

Gauge& MetricRegistry::gauge(const std::string& name, const Labels& labels) {
  const std::string key = metric_key(name, labels);
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = owned_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
    live_[key].push_back(slot.get());
  }
  return static_cast<Gauge&>(*slot);
}

Histogram& MetricRegistry::histogram(const std::string& name,
                                     const Labels& labels) {
  const std::string key = metric_key(name, labels);
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = owned_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
    live_[key].push_back(slot.get());
  }
  return static_cast<Histogram&>(*slot);
}

MetricsSnapshot MetricRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> g(mu_);
  snap.entries.reserve(live_.size() + retired_.size());
  for (const auto& [key, metrics] : live_) {
    if (metrics.empty() && retired_.find(key) == retired_.end()) continue;
    MetricsSnapshot::Entry e;
    e.key = key;
    e.name = family_of(key);
    if (!metrics.empty()) e.kind = metrics.front()->kind();
    for (const Metric* m : metrics) {
      switch (m->kind()) {
        case MetricKind::kCounter:
          e.counter += m->value_u64();
          break;
        case MetricKind::kGauge:
          e.gauge += m->value_i64();
          break;
        case MetricKind::kHistogram:
          e.hist.merge(m->value_hist());
          break;
      }
    }
    if (const auto rit = retired_.find(key); rit != retired_.end()) {
      if (metrics.empty()) e.kind = rit->second.kind;
      e.counter += rit->second.counter;
      e.hist.merge(rit->second.hist);
    }
    snap.entries.push_back(std::move(e));
  }
  // Keys whose instruments were only ever attached and have all detached
  // (live_ keeps an entry per seen key, so this covers registries that
  // dropped the live record entirely).
  for (const auto& [key, r] : retired_) {
    if (live_.find(key) != live_.end()) continue;  // folded above
    MetricsSnapshot::Entry e;
    e.key = key;
    e.name = family_of(key);
    e.kind = r.kind;
    e.counter = r.counter;
    e.hist = r.hist;
    snap.entries.push_back(std::move(e));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  return snap;
}

void MetricRegistry::reset() {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& [key, metrics] : live_) {
    for (Metric* m : metrics) m->reset_value();
  }
  retired_.clear();
}

const MetricsSnapshot::Entry* MetricsSnapshot::find(
    const std::string& key) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const Entry& e, const std::string& k) { return e.key < k; });
  return (it != entries.end() && it->key == key) ? &*it : nullptr;
}

std::uint64_t MetricsSnapshot::counter(const std::string& key) const {
  const Entry* e = find(key);
  return e != nullptr ? e->counter : 0;
}

std::uint64_t MetricsSnapshot::counter_total(const std::string& name) const {
  std::uint64_t total = 0;
  for (const Entry& e : entries) {
    if (e.kind == MetricKind::kCounter && e.name == name) total += e.counter;
  }
  return total;
}

MetricsSnapshot MetricsSnapshot::delta_since(
    const MetricsSnapshot& base) const {
  MetricsSnapshot out;
  out.entries.reserve(entries.size());
  for (const Entry& e : entries) {
    Entry d = e;
    if (const Entry* b = base.find(e.key)) {
      d.counter = e.counter >= b->counter ? e.counter - b->counter : 0;
      if (!d.hist.buckets.empty() && !b->hist.buckets.empty()) {
        for (std::size_t i = 0; i < d.hist.buckets.size() &&
                                i < b->hist.buckets.size();
             ++i) {
          const std::uint64_t cur = d.hist.buckets[i];
          const std::uint64_t old = b->hist.buckets[i];
          d.hist.buckets[i] = cur >= old ? cur - old : 0;
        }
        d.hist.count =
            e.hist.count >= b->hist.count ? e.hist.count - b->hist.count : 0;
        d.hist.sum = e.hist.sum >= b->hist.sum ? e.hist.sum - b->hist.sum : 0;
        // A maximum cannot be un-observed; keep the current one.
      }
    }
    out.entries.push_back(std::move(d));
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"schema\": 1, \"counters\": {";
  bool first = true;
  for (const Entry& e : entries) {
    if (e.kind != MetricKind::kCounter) continue;
    if (!first) out += ", ";
    first = false;
    append_json_string(out, e.key);
    out += ": ";
    out += std::to_string(e.counter);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const Entry& e : entries) {
    if (e.kind != MetricKind::kGauge) continue;
    if (!first) out += ", ";
    first = false;
    append_json_string(out, e.key);
    out += ": ";
    out += std::to_string(e.gauge);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const Entry& e : entries) {
    if (e.kind != MetricKind::kHistogram) continue;
    if (!first) out += ", ";
    first = false;
    append_json_string(out, e.key);
    out += ": {\"count\": ";
    out += std::to_string(e.hist.count);
    out += ", \"mean_us\": ";
    append_double(out, e.hist.mean());
    out += ", \"max_us\": ";
    out += std::to_string(e.hist.max);
    out += ", \"p50_us\": ";
    append_double(out, e.hist.percentile(0.50));
    out += ", \"p90_us\": ";
    append_double(out, e.hist.percentile(0.90));
    out += ", \"p95_us\": ";
    append_double(out, e.hist.percentile(0.95));
    out += ", \"p99_us\": ";
    append_double(out, e.hist.percentile(0.99));
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace ppr::obs
