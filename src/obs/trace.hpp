// Per-query tracing: trace ids, nestable phase spans, chrome://tracing
// export (DESIGN.md §11).
//
// Model: a *trace* is one query's journey through the engine; a *span* is
// one timed phase within it (queue wait, a batch execution, one pipeline
// round, the server side of an RPC). Spans nest through their
// parent_span_id chain — each thread carries a current TraceContext
// (trace id + innermost open span id), ScopedSpan pushes onto it, and the
// RPC layer ships the context in the frame header so server-side work
// lands under the caller's span even on another "machine"/thread.
//
// Everything is inert until Tracer::set_enabled(true): ScopedSpan checks
// one relaxed atomic and does nothing when tracing is off, so traced code
// paths cost nothing in production runs. Records go into a bounded
// in-memory buffer (drops are counted, never blocking the hot path).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "concurrent/spinlock.hpp"

namespace ppr::obs {

/// The ambient trace a thread is working under. trace_id == 0 means "not
/// tracing"; span_id is the innermost open span (the parent of any span
/// opened next).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool active() const { return trace_id != 0; }
};

/// One finished span. Times are nanoseconds since the tracer's epoch (a
/// process-wide steady_clock origin), so spans from every thread and
/// simulated machine share one timeline.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root span of its trace
  std::string name;
  /// Free-form note set via ScopedSpan::annotate() (e.g. the kernel mode
  /// a push round ran under); exported in the chrome://tracing args.
  std::string annotation;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::uint32_t tid = 0;  // small per-thread ordinal for the export
};

/// Fresh non-zero ids (process-wide atomics).
std::uint64_t next_trace_id();
std::uint64_t next_span_id();

/// This thread's ambient context (see TraceBinding / ScopedSpan).
TraceContext current_trace();
void set_current_trace(TraceContext ctx);

/// Process-wide span sink.
class Tracer {
 public:
  static Tracer& global();

  /// Cheap global switch consulted by every ScopedSpan.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Bound on buffered spans; records beyond it are counted in dropped().
  void set_capacity(std::size_t max_spans);

  void record(SpanRecord&& rec);

  /// Record a span retroactively from explicit steady_clock time points —
  /// how the scheduler emits queue-wait spans (whose start happened before
  /// anyone knew the wait was worth a span).
  void record_span(std::string name, std::uint64_t trace_id,
                   std::uint64_t span_id, std::uint64_t parent_id,
                   std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end,
                   std::string annotation = {});

  std::vector<SpanRecord> spans() const;
  std::uint64_t dropped() const;
  void clear();

  /// Origin of every SpanRecord's timestamps.
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }
  std::int64_t since_epoch_ns(
      std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch_)
        .count();
  }

  /// chrome://tracing / Perfetto "traceEvents" JSON: one complete ("ph":
  /// "X") event per span, args carrying trace/span/parent ids.
  std::string to_chrome_json() const;
  void write_chrome_json(const std::string& path) const;

 private:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  inline static std::atomic<bool> enabled_{false};

  mutable Spinlock lock_;
  std::vector<SpanRecord> records_;
  std::size_t capacity_ = 1 << 20;
  std::atomic<std::uint64_t> dropped_{0};
  std::chrono::steady_clock::time_point epoch_;
};

/// Adopt a context for the current scope (restores the previous one on
/// destruction). Used where a trace crosses threads: the RPC server
/// handler and the scheduler's batch executor bind the caller's context
/// before opening their own spans.
class TraceBinding {
 public:
  explicit TraceBinding(TraceContext ctx) : prev_(current_trace()) {
    set_current_trace(ctx);
  }
  ~TraceBinding() { set_current_trace(prev_); }
  TraceBinding(const TraceBinding&) = delete;
  TraceBinding& operator=(const TraceBinding&) = delete;

 private:
  TraceContext prev_;
};

/// RAII phase span. Inert (two relaxed loads) when tracing is disabled.
/// When enabled: continues the thread's current trace as a child span, or
/// roots a brand-new trace if none is active; the context is restored and
/// the record emitted on destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name) {
    if (!Tracer::enabled()) return;
    open(std::move(name));
  }
  ~ScopedSpan() {
    if (span_id_ != 0) close();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return span_id_ != 0; }
  std::uint64_t trace_id() const { return trace_id_; }
  std::uint64_t span_id() const { return span_id_; }

  /// Attach a note to the span (overwrites any previous one); it rides in
  /// the record's `annotation` field and the chrome://tracing args. No-op
  /// when the span is inactive (tracing disabled).
  void annotate(std::string note) {
    if (span_id_ != 0) annotation_ = std::move(note);
  }

 private:
  void open(std::string name);
  void close();

  std::string name_;
  std::string annotation_;
  TraceContext prev_;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ppr::obs
