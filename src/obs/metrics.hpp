// Process-wide metric registry: the one instrumentation plane behind every
// stats struct in the tree (DESIGN.md §11).
//
// Instruments (Counter, ShardedCounter, Gauge, Histogram) are plain objects
// owned by whoever measures — a stats struct, a pool, the registry itself —
// and *attached* to the MetricRegistry under a `name{label=value,...}` key
// via RAII Registration handles. A snapshot walks the live attachments and
// folds in the values of instruments that have already detached (retired
// counters keep counting toward the process totals; a short-lived
// FetchPipeline's rows are not lost when the query finishes).
//
// Counter::add is one relaxed atomic increment; ShardedCounter spreads the
// increment over cacheline-padded per-thread cells so write-heavy counters
// (wire bytes, pool recycling) never bounce a cacheline between threads.
// Histograms reuse the lock-free log-bucketed common/histogram.hpp.
//
// The legacy stats structs (FetchStats, BufferPoolStats, ...) keep their
// exact public field names and accessors — fields simply changed type from
// std::atomic<uint64_t> to these instruments, which mimic the atomic API
// (fetch_add / load / operator= / operator+= / operator++).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/histogram.hpp"

namespace ppr::obs {

enum class MetricKind : std::uint8_t { kCounter = 0, kGauge = 1,
                                       kHistogram = 2 };

/// Base of every registrable instrument. The typed value_* accessors exist
/// so the registry can snapshot heterogeneous attachments without RTTI;
/// each subclass overrides the one matching its kind.
class Metric {
 public:
  virtual ~Metric() = default;
  virtual MetricKind kind() const = 0;
  virtual std::uint64_t value_u64() const { return 0; }
  virtual std::int64_t value_i64() const { return 0; }
  virtual HistogramSnapshot value_hist() const { return {}; }
  virtual void reset_value() = 0;
};

/// Monotonic counter: one relaxed atomic. API mirrors std::atomic<uint64_t>
/// so existing `stats.field.fetch_add(n, relaxed)` / `.load()` /
/// `field = 0` call sites compile unchanged.
class Counter : public Metric {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  MetricKind kind() const override { return MetricKind::kCounter; }
  std::uint64_t value_u64() const override { return load(); }
  void reset_value() override { store(0); }

  void add(std::uint64_t n = 1) {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t fetch_add(std::uint64_t n,
                          std::memory_order mo = std::memory_order_relaxed) {
    return v_.fetch_add(n, mo);
  }
  std::uint64_t load(std::memory_order mo = std::memory_order_relaxed) const {
    return v_.load(mo);
  }
  void store(std::uint64_t v,
             std::memory_order mo = std::memory_order_relaxed) {
    v_.store(v, mo);
  }
  std::uint64_t value() const { return load(); }
  operator std::uint64_t() const { return load(); }
  Counter& operator=(std::uint64_t v) {
    store(v);
    return *this;
  }
  Counter& operator+=(std::uint64_t n) {
    add(n);
    return *this;
  }
  Counter& operator++() {
    add(1);
    return *this;
  }
  std::uint64_t operator++(int) { return fetch_add(1); }
  void reset() { store(0); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Write-optimized counter: increments land in one of kShards cacheline-
/// padded cells picked by a thread-local index, so concurrent writers never
/// contend. Reads sum the cells (exactly-once per increment, but a read
/// concurrent with writes may miss in-flight increments — same relaxed
/// semantics as the plain Counter).
class ShardedCounter : public Metric {
 public:
  static constexpr std::size_t kShards = 16;

  ShardedCounter() = default;
  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  MetricKind kind() const override { return MetricKind::kCounter; }
  std::uint64_t value_u64() const override { return load(); }
  void reset_value() override { store(0); }

  void add(std::uint64_t n = 1) {
    cell().fetch_add(n, std::memory_order_relaxed);
  }
  /// Matches std::atomic's signature at existing call sites; the previous
  /// total is not observable cheaply, so nothing is returned.
  void fetch_add(std::uint64_t n,
                 std::memory_order = std::memory_order_relaxed) {
    add(n);
  }
  std::uint64_t load(std::memory_order = std::memory_order_relaxed) const {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) {
      total += c.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  /// Clears every cell, then seeds cell 0 (only reset-to-zero and
  /// test seeding use this; it is not atomic across cells).
  void store(std::uint64_t v,
             std::memory_order = std::memory_order_relaxed) {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
    if (v != 0) cells_[0].v.store(v, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return load(); }
  operator std::uint64_t() const { return load(); }
  ShardedCounter& operator=(std::uint64_t v) {
    store(v);
    return *this;
  }
  ShardedCounter& operator+=(std::uint64_t n) {
    add(n);
    return *this;
  }
  ShardedCounter& operator++() {
    add(1);
    return *this;
  }
  void reset() { store(0); }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };

  std::atomic<std::uint64_t>& cell() {
    static std::atomic<unsigned> next{0};
    thread_local const unsigned id =
        next.fetch_add(1, std::memory_order_relaxed);
    return cells_[id % kShards].v;
  }

  std::array<Cell, kShards> cells_{};
};

/// Point-in-time signed value (queue depths, resident rows, graph sizes).
class Gauge : public Metric {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  MetricKind kind() const override { return MetricKind::kGauge; }
  std::int64_t value_i64() const override { return load(); }
  void reset_value() override { set(0); }

  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t load() const { return v_.load(std::memory_order_relaxed); }
  std::int64_t value() const { return load(); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Registrable wrapper over the lock-free log-bucketed LatencyHistogram.
/// Inherits record()/snapshot()/reset() unchanged.
class Histogram : public Metric, public LatencyHistogram {
 public:
  MetricKind kind() const override { return MetricKind::kHistogram; }
  HistogramSnapshot value_hist() const override { return snapshot(); }
  void reset_value() override { LatencyHistogram::reset(); }
};

/// Metric labels; rendered into the key as `name{k=v,k2=v2}` in the given
/// order (callers keep a consistent order per family).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// `name{k=v,...}` — the registry's canonical instrument key.
std::string metric_key(const std::string& name, const Labels& labels);

class MetricRegistry;

/// RAII attachment handle: detaching (destruction) removes the instrument
/// from the live set and folds its final value into the registry's retired
/// totals, so process-wide counts survive short-lived owners.
class Registration {
 public:
  Registration() = default;
  Registration(Registration&& other) noexcept { *this = std::move(other); }
  Registration& operator=(Registration&& other) noexcept;
  Registration(const Registration&) = delete;
  Registration& operator=(const Registration&) = delete;
  ~Registration() { detach(); }

  void detach();

 private:
  friend class MetricRegistry;
  Registration(MetricRegistry* registry, std::string key, Metric* metric)
      : registry_(registry), key_(std::move(key)), metric_(metric) {}

  MetricRegistry* registry_ = nullptr;
  std::string key_;
  Metric* metric_ = nullptr;
};

/// One entry of a MetricsSnapshot: the resolved value of every instrument
/// (live + retired) sharing a key.
struct MetricsSnapshot {
  struct Entry {
    std::string key;   // name{labels}
    std::string name;  // family name without labels
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t counter = 0;
    std::int64_t gauge = 0;
    HistogramSnapshot hist;
  };

  std::vector<Entry> entries;  // sorted by key

  const Entry* find(const std::string& key) const;
  /// Counter value at `key`; 0 when absent.
  std::uint64_t counter(const std::string& key) const;
  /// Sum of every counter entry whose family name is `name` (all labels).
  std::uint64_t counter_total(const std::string& name) const;

  /// Per-interval view: counters and histogram buckets become this-minus-
  /// base differences (entries absent from `base` pass through; gauges keep
  /// their current value; histogram max is the current max, since a maximum
  /// cannot be un-observed).
  MetricsSnapshot delta_since(const MetricsSnapshot& base) const;

  /// Versioned export (`"schema": 1`): counters, gauges, and histogram
  /// digests (count/mean/max/p50/p90/p95/p99) keyed by `name{labels}`.
  std::string to_json() const;
};

/// Process-wide instrument directory. attach() registers an externally
/// owned instrument; counter()/gauge()/histogram() lazily create registry-
/// owned ones (for function-local statics on hot paths). Thread-safe.
class MetricRegistry {
 public:
  static MetricRegistry& global();

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Attach an instrument the caller owns. The instrument must outlive the
  /// returned Registration. Multiple instruments may share a key (e.g. one
  /// FetchStats per cluster in a multi-cluster test); snapshots sum them.
  Registration attach(const std::string& name, const Labels& labels,
                      Metric& metric);

  /// Get-or-create registry-owned instruments, permanently live. The
  /// returned reference is stable for the registry's lifetime.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {});

  /// Live + retired values of every key ever attached.
  MetricsSnapshot snapshot() const;

  /// Zero every live instrument and drop all retired totals.
  void reset();

 private:
  friend class Registration;
  void detach(const std::string& key, Metric* metric);

  struct Retired {
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t counter = 0;
    HistogramSnapshot hist;
  };

  mutable std::mutex mu_;
  // key -> every live instrument attached under it.
  std::unordered_map<std::string, std::vector<Metric*>> live_;
  // Registry-owned instruments (counter()/gauge()/histogram()).
  std::unordered_map<std::string, std::unique_ptr<Metric>> owned_;
  // Final values of detached instruments, folded per key.
  std::unordered_map<std::string, Retired> retired_;
};

}  // namespace ppr::obs
