#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>

namespace ppr::obs {

namespace {

/// Small per-thread ordinal for the chrome://tracing "tid" field (actual
/// OS thread ids are wide and unstable across runs).
std::uint32_t this_thread_ordinal() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

thread_local TraceContext t_current{};

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

std::uint64_t next_trace_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t next_span_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

TraceContext current_trace() { return t_current; }
void set_current_trace(TraceContext ctx) { t_current = ctx; }

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_capacity(std::size_t max_spans) {
  LockGuard<Spinlock> g(lock_);
  capacity_ = max_spans;
}

void Tracer::record(SpanRecord&& rec) {
  rec.tid = rec.tid != 0 ? rec.tid : this_thread_ordinal();
  LockGuard<Spinlock> g(lock_);
  if (records_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  records_.push_back(std::move(rec));
}

void Tracer::record_span(std::string name, std::uint64_t trace_id,
                         std::uint64_t span_id, std::uint64_t parent_id,
                         std::chrono::steady_clock::time_point start,
                         std::chrono::steady_clock::time_point end,
                         std::string annotation) {
  SpanRecord rec;
  rec.trace_id = trace_id;
  rec.span_id = span_id;
  rec.parent_id = parent_id;
  rec.name = std::move(name);
  rec.annotation = std::move(annotation);
  rec.start_ns = since_epoch_ns(start);
  rec.end_ns = since_epoch_ns(end);
  record(std::move(rec));
}

std::vector<SpanRecord> Tracer::spans() const {
  LockGuard<Spinlock> g(lock_);
  return records_;
}

std::uint64_t Tracer::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

void Tracer::clear() {
  LockGuard<Spinlock> g(lock_);
  records_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string Tracer::to_chrome_json() const {
  const std::vector<SpanRecord> recs = spans();
  std::string out = "{\"traceEvents\": [";
  char buf[160];
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const SpanRecord& r = recs[i];
    if (i > 0) out += ",";
    out += "\n  {\"name\": ";
    append_json_string(out, r.name);
    // Complete events: ts/dur are microseconds (chrome://tracing's unit).
    std::snprintf(buf, sizeof(buf),
                  ", \"cat\": \"ppr\", \"ph\": \"X\", \"pid\": 0, "
                  "\"tid\": %u, \"ts\": %.3f, \"dur\": %.3f",
                  r.tid, static_cast<double>(r.start_ns) / 1000.0,
                  static_cast<double>(r.end_ns - r.start_ns) / 1000.0);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ", \"args\": {\"trace\": %llu, \"span\": %llu, "
                  "\"parent\": %llu",
                  static_cast<unsigned long long>(r.trace_id),
                  static_cast<unsigned long long>(r.span_id),
                  static_cast<unsigned long long>(r.parent_id));
    out += buf;
    if (!r.annotation.empty()) {
      out += ", \"annotation\": ";
      append_json_string(out, r.annotation);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

void Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << to_chrome_json();
}

void ScopedSpan::open(std::string name) {
  name_ = std::move(name);
  prev_ = current_trace();
  if (prev_.active()) {
    trace_id_ = prev_.trace_id;
    parent_id_ = prev_.span_id;
  } else {
    trace_id_ = next_trace_id();
    parent_id_ = 0;
  }
  span_id_ = next_span_id();
  set_current_trace(TraceContext{trace_id_, span_id_});
  start_ = std::chrono::steady_clock::now();
}

void ScopedSpan::close() {
  const auto end = std::chrono::steady_clock::now();
  set_current_trace(prev_);
  Tracer::global().record_span(std::move(name_), trace_id_, span_id_,
                               parent_id_, start_, end,
                               std::move(annotation_));
  span_id_ = 0;
}

}  // namespace ppr::obs
