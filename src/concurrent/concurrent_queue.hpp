// Bounded-unbounded MPMC queue built on mutex + condition variable.
// Used as the inbox of the in-process transport and for worker handoff.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ppr {

template <typename T>
class ConcurrentQueue {
 public:
  void push(T v) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(v));
    }
    cv_.notify_one();
  }

  /// Blocks until an element is available or close() is called.
  /// Returns nullopt only after close() with an empty queue.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  /// Wake all blocked consumers; subsequent pops drain then return nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace ppr
