// Open-addressing hash table with 64-bit keys and linear probing.
// One FlatMap is a single submap of the sharded parallel map; it is NOT
// thread-safe on its own — the shard layer provides synchronization.
//
// Keys: any uint64 except kEmptyKey (we pack <local id, shard id> node
// references into 62 bits, so the sentinel is never a valid key).
// No per-key erase: Forward Push only inserts/updates and bulk-clears,
// which keeps probing tombstone-free.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace ppr {

inline constexpr std::uint64_t kEmptyKey = ~0ULL;

/// Finalizer from MurmurHash3; good avalanche for packed node refs.
inline std::uint64_t mix_hash(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

template <typename V>
class FlatMap {
 public:
  explicit FlatMap(std::size_t initial_capacity = 16) {
    std::size_t cap = 16;
    while (cap < initial_capacity) cap <<= 1;
    keys_.assign(cap, kEmptyKey);
    values_.resize(cap);
  }

  /// Returns a reference to the value for `key`, default-constructing it on
  /// first access. Invalidated by the next insertion (may rehash).
  V& operator[](std::uint64_t key) {
    GE_CHECK(key != kEmptyKey, "kEmptyKey is reserved");
    if ((size_ + 1) * 4 > keys_.size() * 3) grow();
    std::size_t i = probe_start(key);
    for (;;) {
      if (keys_[i] == key) return values_[i];
      if (keys_[i] == kEmptyKey) {
        keys_[i] = key;
        ++size_;
        values_[i] = V{};
        return values_[i];
      }
      i = (i + 1) & (keys_.size() - 1);
    }
  }

  /// Pointer to the value for `key`, or nullptr if absent.
  const V* find(std::uint64_t key) const {
    std::size_t i = probe_start(key);
    for (;;) {
      if (keys_[i] == key) return &values_[i];
      if (keys_[i] == kEmptyKey) return nullptr;
      i = (i + 1) & (keys_.size() - 1);
    }
  }
  V* find(std::uint64_t key) {
    return const_cast<V*>(std::as_const(*this).find(key));
  }

  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return keys_.size(); }

  void clear() {
    std::fill(keys_.begin(), keys_.end(), kEmptyKey);
    size_ = 0;
  }

  /// Visit every (key, value); fn(uint64_t, V&).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmptyKey) fn(keys_[i], values_[i]);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmptyKey) fn(keys_[i], values_[i]);
    }
  }

 private:
  std::size_t probe_start(std::uint64_t key) const {
    return mix_hash(key) & (keys_.size() - 1);
  }

  void grow() {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    keys_.assign(old_keys.size() * 2, kEmptyKey);
    values_.assign(old_keys.size() * 2, V{});
    size_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != kEmptyKey) (*this)[old_keys[i]] = old_values[i];
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<V> values_;
  std::size_t size_ = 0;
};

}  // namespace ppr
