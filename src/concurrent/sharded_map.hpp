// Sharded ("submap") parallel hash map, modeled on parallel-hashmap
// (greg7mdp/phmap), the structure the paper builds its PPR operators on.
//
// The table is split into 2^B submaps selected by high hash bits. Two
// concurrency regimes are supported, matching §3.3 of the paper:
//
//   1. Locked: every access takes the owning submap's spinlock
//      (upsert / find / for_each). Safe for arbitrary thread patterns.
//   2. Lock-free partitioned bulk update: apply_partitioned() assigns each
//      submap to exactly one OpenMP thread (submap_index % num_threads ==
//      thread_id), so updates touch disjoint submaps and need NO locks.
//      This is the trick the paper uses to "eliminate the need for locks by
//      assigning computationally expensive map update operations to each
//      thread based on the index of the submap."
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "concurrent/flat_map.hpp"
#include "concurrent/spinlock.hpp"

namespace ppr {

template <typename V>
class ShardedMap {
 public:
  /// `submap_bits`: the map has 2^submap_bits submaps. phmap defaults to 4;
  /// we default to 6 (64 submaps) so partitioned bulk updates balance well
  /// up to 32 threads.
  explicit ShardedMap(int submap_bits = 6)
      : submap_bits_(submap_bits), submaps_(std::size_t{1} << submap_bits) {}

  std::size_t num_submaps() const { return submaps_.size(); }

  std::size_t submap_index(std::uint64_t key) const {
    // High bits select the submap; FlatMap probes on low bits, so the two
    // selections stay independent.
    return mix_hash(key) >> (64 - submap_bits_);
  }

  /// Locked read-modify-write: fn(V&) runs under the submap lock with the
  /// value default-constructed on first touch.
  template <typename Fn>
  void upsert(std::uint64_t key, Fn&& fn) {
    Shard& s = submaps_[submap_index(key)];
    LockGuard<Spinlock> guard(s.lock);
    fn(s.map[key]);
  }

  /// Locked lookup returning a copy (the reference would not be safe to
  /// hold outside the lock).
  bool find(std::uint64_t key, V& out) const {
    const Shard& s = submaps_[submap_index(key)];
    LockGuard<Spinlock> guard(s.lock);
    const V* v = s.map.find(key);
    if (v == nullptr) return false;
    out = *v;
    return true;
  }

  bool contains(std::uint64_t key) const {
    V tmp;
    return find(key, tmp);
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : submaps_) {
      LockGuard<Spinlock> guard(s.lock);
      n += s.map.size();
    }
    return n;
  }

  void clear() {
    for (Shard& s : submaps_) {
      LockGuard<Spinlock> guard(s.lock);
      s.map.clear();
    }
  }

  /// Sequential visit of every entry; NOT safe against concurrent writers.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Shard& s : submaps_) s.map.for_each(fn);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Shard& s : submaps_) s.map.for_each(fn);
  }

  /// Lock-free partitioned bulk update. Each of `num_threads` OpenMP
  /// threads scans the whole op list but applies only the ops whose target
  /// submap it owns, so no two threads ever touch the same submap.
  ///
  /// Op must expose `.key`; fn(V&, const Op&) applies one op. Ops for the
  /// same key are applied in list order (single owner => sequenced).
  template <typename Op, typename Fn>
  void apply_partitioned(std::span<const Op> ops, int num_threads, Fn&& fn) {
    if (num_threads <= 1 || ops.size() < 2) {
      for (const Op& op : ops) fn(submap_for(op.key).map[op.key], op);
      return;
    }
#ifdef _OPENMP
#pragma omp parallel num_threads(num_threads)
    {
      const std::size_t tid =
          static_cast<std::size_t>(omp_get_thread_num());
      const std::size_t nt = static_cast<std::size_t>(omp_get_num_threads());
      for (const Op& op : ops) {
        const std::size_t idx = submap_index(op.key);
        if (idx % nt == tid) fn(submaps_[idx].map[op.key], op);
      }
    }
#else
    for (const Op& op : ops) fn(submap_for(op.key).map[op.key], op);
#endif
  }

  /// Direct access to one submap's FlatMap for single-owner phases (e.g.
  /// per-thread drains). Caller is responsible for synchronization.
  FlatMap<V>& submap(std::size_t idx) { return submaps_[idx].map; }
  const FlatMap<V>& submap(std::size_t idx) const {
    return submaps_[idx].map;
  }

 private:
  struct Shard {
    mutable Spinlock lock;
    FlatMap<V> map;
  };

  Shard& submap_for(std::uint64_t key) {
    return submaps_[submap_index(key)];
  }

  int submap_bits_;
  std::vector<Shard> submaps_;
};

}  // namespace ppr
