// Test-and-test-and-set spinlock with exponential backoff.
// Submap critical sections are a few nanoseconds long, so spinning beats
// a futex-based mutex for the hashmap's contention profile.
#pragma once

#include <atomic>
#include <thread>

namespace ppr {

class Spinlock {
 public:
  void lock() {
    int spins = 0;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins > 1024) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard for Spinlock (or any BasicLockable).
template <typename Lock>
class LockGuard {
 public:
  explicit LockGuard(Lock& lock) : lock_(lock) { lock_.lock(); }
  ~LockGuard() { lock_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Lock& lock_;
};

}  // namespace ppr
