// Wire message for the RPC layer.
//
// Mirrors the structure of a PyTorch RPC call: a request names a target
// object (service) and method and carries a serialized payload; a response
// carries the serialized return value or an error string.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hpp"

namespace ppr {

enum class MessageKind : std::uint8_t { kRequest = 0, kResponse = 1 };

/// Scatter-gather view of an encoded message: a small owned header (frame
/// fields + string metadata + payload length) plus a *borrowed* span over
/// the message's payload bytes. Writing header and payload as separate
/// spans (writev) is what lets SocketTransport ship a message without ever
/// copying the payload into a flat frame. The view is only valid while the
/// Message it came from is alive and unmodified.
struct FrameView {
  std::vector<std::uint8_t> header;       // pooled; release after the write
  std::span<const std::uint8_t> payload;  // borrowed from the Message

  std::size_t wire_size() const { return header.size() + payload.size(); }
};

struct Message {
  std::uint64_t call_id = 0;
  MessageKind kind = MessageKind::kRequest;
  std::int32_t src_machine = -1;
  std::int32_t dst_machine = -1;
  /// Trace context of the issuing caller (obs/trace.hpp), carried in the
  /// frame header so the server-side handler's spans land in the caller's
  /// trace. 0 = untraced (the default; frames decode identically).
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  std::string service;  // request only
  std::string method;   // request only
  std::string error;    // response only; empty on success
  std::vector<std::uint8_t> payload;

  /// Zero-copy encoding: header bytes (ending in the payload length) in a
  /// pool-recycled buffer, payload as a borrowed span. header ‖ payload
  /// is byte-identical to encode().
  FrameView encode_view() const;

  /// Flat single-buffer frame (header ‖ payload). Kept for tests and the
  /// in-proc cost model; the socket hot path uses encode_view() instead.
  std::vector<std::uint8_t> encode() const;
  static Message decode(std::span<const std::uint8_t> frame);

  /// Decode a header produced by encode_view(); returns the message with
  /// an empty payload and stores the expected payload length, so the
  /// transport can read the payload straight into its own (pooled) buffer.
  static Message decode_header(std::span<const std::uint8_t> header,
                               std::uint64_t* payload_len);

  /// Exact bytes this message occupies on the wire (header + payload,
  /// excluding any transport length prefix); equals encode().size() for
  /// every payload codec, so the bandwidth model and the bench byte
  /// counters never under- or over-charge.
  std::size_t wire_size() const;
};

}  // namespace ppr
