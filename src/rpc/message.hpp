// Wire message for the RPC layer.
//
// Mirrors the structure of a PyTorch RPC call: a request names a target
// object (service) and method and carries a serialized payload; a response
// carries the serialized return value or an error string.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hpp"

namespace ppr {

enum class MessageKind : std::uint8_t { kRequest = 0, kResponse = 1 };

struct Message {
  std::uint64_t call_id = 0;
  MessageKind kind = MessageKind::kRequest;
  std::int32_t src_machine = -1;
  std::int32_t dst_machine = -1;
  std::string service;  // request only
  std::string method;   // request only
  std::string error;    // response only; empty on success
  std::vector<std::uint8_t> payload;

  /// Serialize to a flat frame (no length prefix; transports add their own).
  std::vector<std::uint8_t> encode() const;
  static Message decode(std::span<const std::uint8_t> frame);

  /// Total bytes on the wire, used by the transport's bandwidth model.
  std::size_t wire_size() const;
};

}  // namespace ppr
