// TcpTransport: the real multi-process transport (DESIGN.md §12).
//
// Where InProcTransport simulates K machines with queues and
// SocketTransport hosts all K in one process over socketpairs, a
// TcpTransport instance serves exactly ONE node of a K-node mesh; the
// other K-1 nodes are separate OS processes, possibly on other hosts.
// Frames, codecs, and trace propagation are identical to SocketTransport
// (the shared frame_io path), so RpcEndpoint and everything above it work
// unchanged.
//
// Link layout mirrors SocketTransport: one ordered TCP connection per
// (src, dst) pair — the side that will *send* on a link is the side that
// connects — plus a local socketpair for the self loop. Bootstrap:
//
//   1. bind+listen on this node's configured port (SO_REUSEADDR, backlog
//      >= cluster size; TCP_NODELAY on every accepted/made connection);
//   2. connect to every peer (nonblocking connect + poll, retrying
//      ECONNREFUSED until `connect_timeout_s` so start order is free) and
//      send a HELLO (rpc/wire_protocol.hpp); the peer answers WELCOME or
//      a REJECT reason, which surfaces here as an RpcError;
//   3. accept K-1 inbound links, validating each HELLO (version, cluster
//      size, node-id range/collision, shard-map epoch+fingerprint);
//   4. readiness barrier — a separate step AFTER start(), because "my
//      sockets are connected" is not "I am ready to serve": a node still
//      has to register its RPC services once the mesh is up, and a peer
//      released too early would race requests into that window. barrier()
//      sends kReady to node 0 over the outbound link; node 0 answers kGo
//      on each outbound link once all K-1 readies arrived. The control
//      frames ride the running reader threads.
//
// Departure: announce_leave() sends a kLeave control frame on every
// outbound link; receivers mark the peer departed (new sends to it raise
// RpcError) but keep draining the link until EOF — kLeave means "nothing
// NEW is coming", yet replies the peer wrote concurrently with its LEAVE
// are still in flight and must reach their futures. An EOF without kLeave
// is logged as an unclean disconnect. Either way EOF fires the endpoint's
// peer-down hook so calls pending on a dead peer fail instead of hanging.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "rpc/transport.hpp"

namespace ppr {

struct TcpPeer {
  std::string host;
  std::uint16_t port = 0;
};

struct TcpTransportOptions {
  /// Total time budget for connecting to every peer (covers peers that
  /// start later than us).
  double connect_timeout_s = 20.0;
  /// Pause between connect retries while a peer's listener isn't up yet.
  double connect_retry_ms = 50.0;
  /// Shard-map identity carried in the HELLO and checked against every
  /// peer's (see ShardMap::fingerprint()).
  std::uint64_t shard_epoch = 0;
  std::uint64_t shard_fingerprint = 0;
};

class TcpTransport final : public Transport {
 public:
  /// Binds and listens on `peers[local_node]` immediately (so peers can
  /// start connecting) but makes no connections yet — call connect_mesh().
  /// A port of 0 binds ephemerally; listen_port() reports the real port
  /// (single-host tests use this).
  TcpTransport(int local_node, std::vector<TcpPeer> peers,
               TcpTransportOptions options = {});
  ~TcpTransport() override;

  /// Establish the full mesh: outbound connects + HELLO handshakes,
  /// inbound accepts + validation. Throws RpcError on timeout, rejection,
  /// or a malformed peer. Must be called exactly once, before start().
  void connect_mesh();

  /// Cluster-wide readiness rendezvous (see bootstrap step 4 above).
  /// Call exactly once, after start(), at the point where this node is
  /// fully able to serve — no peer passes the barrier before every node
  /// reached it. Throws RpcError if a peer never reports within
  /// `connect_timeout_s`.
  void barrier();

  std::uint16_t listen_port() const { return listen_port_; }
  int local_node() const { return local_node_; }

  /// Patch a peer's port before connect_mesh() — for ephemeral-port
  /// (port 0) deployments where real ports are only known after every
  /// transport has bound its listener (single-host tests).
  void set_peer_port(int node, std::uint16_t port);

  /// Send a kLeave on every outbound link (idempotent). Called by stop()
  /// as well; call it earlier for an orderly drain sequence.
  void announce_leave();

  bool peer_departed(int node) const {
    return departed_[static_cast<std::size_t>(node)].load(
        std::memory_order_acquire);
  }

  // Transport interface. start()/detach() only accept this node's id.
  void start(int machine_id, MessageHandler handler) override;
  void send(Message msg) override;
  void detach(int machine_id) override;
  void stop() override;
  void set_peer_down_handler(int machine_id,
                             std::function<void(int)> on_down) override;
  int num_machines() const override {
    return static_cast<int>(peers_.size());
  }

 private:
  struct Link {
    int fd = -1;
    std::mutex write_mutex;
  };

  void reader_loop(int peer, int fd);
  int connect_to_peer(int peer) const;
  void accept_inbound();

  int local_node_;
  std::vector<TcpPeer> peers_;
  TcpTransportOptions options_;

  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;

  std::vector<std::unique_ptr<Link>> out_links_;  // [dst] send side
  std::vector<int> in_fds_;                       // [src] receive side
  std::vector<std::thread> readers_;
  // departed_[peer]: kLeave received from that peer.
  std::vector<std::atomic<bool>> departed_;

  MessageHandler handler_;
  std::function<void(int)> peer_down_;
  bool meshed_ = false;
  bool started_ = false;
  // Barrier rendezvous state, fed by the reader threads: the coordinator
  // counts kReady frames, everyone else watches for its kGo.
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int readies_seen_ = 0;
  bool go_seen_ = false;
  std::atomic<bool> left_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> detached_{false};

  // Wire counters (obs plane): per-node traffic over the TCP mesh.
  obs::ShardedCounter frames_sent_;
  obs::ShardedCounter frames_received_;
  obs::ShardedCounter bytes_sent_;
  obs::ShardedCounter bytes_received_;
  obs::ShardedCounter peers_departed_;
  std::vector<obs::Registration> metric_regs_;
};

}  // namespace ppr
