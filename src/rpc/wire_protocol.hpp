// Bootstrap handshake frames of the TCP mesh (DESIGN.md §12).
//
// When node A opens its outbound link to node B, A sends one fixed-size
// HELLO frame naming the protocol version, A's node id, the cluster size,
// and the fingerprint of the shard map A was configured with. B validates
// the HELLO against its own configuration and answers WELCOME (status 0)
// or a REJECT status plus a human-readable reason string, then closes the
// link on rejection. Only after every link of the full mesh is WELCOMEd
// does the readiness barrier run (frame_io control frames kReady/kGo).
//
// The validation logic is pure (no sockets) so cluster_test can exercise
// every rejection path directly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace ppr {

/// Bumped whenever the frame layout or the bootstrap sequence changes
/// incompatibly; both ends must match exactly.
// v2: storage requests carry a [shard, routing epoch] header and storage
// replies a status byte (stale-route redirects); ShardMap wire format
// gained replica sets. v1 peers cannot interoperate.
inline constexpr std::uint16_t kClusterProtocolVersion = 2;

/// "GEN1" little-endian — rejects random port scanners and non-cluster
/// peers before any field is interpreted.
inline constexpr std::uint32_t kHelloMagic = 0x314e4547;

/// Fixed-size HELLO, sent by the connecting (outbound) side of a link.
struct HelloFrame {
  std::uint32_t magic = kHelloMagic;
  std::uint16_t version = kClusterProtocolVersion;
  std::uint16_t reserved = 0;
  std::int32_t node_id = -1;       // sender's node id
  std::int32_t cluster_size = 0;   // sender's view of the mesh size
  std::uint64_t shard_epoch = 0;   // sender's shard-map epoch
  std::uint64_t shard_fingerprint = 0;  // sender's shard-map fingerprint
};
static_assert(sizeof(HelloFrame) == 32, "HELLO is a fixed 32-byte frame");

enum class HelloStatus : std::uint16_t {
  kWelcome = 0,
  kBadMagic = 1,
  kVersionMismatch = 2,
  kClusterSizeMismatch = 3,
  kNodeIdOutOfRange = 4,
  kNodeIdCollision = 5,
  kShardMapMismatch = 6,
};

/// Fixed-size reply header; a non-zero status is followed by
/// `reason_len` bytes of human-readable reason, then the acceptor closes
/// the link.
struct HelloReply {
  std::uint32_t magic = kHelloMagic;
  std::uint16_t version = kClusterProtocolVersion;
  std::uint16_t status = 0;
  std::uint32_t reason_len = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(HelloReply) == 16, "reply is a fixed 16-byte frame");

/// What the acceptor knows and checks a HELLO against.
struct HelloExpectation {
  std::int32_t local_node = -1;
  std::int32_t cluster_size = 0;
  std::uint64_t shard_epoch = 0;
  std::uint64_t shard_fingerprint = 0;
  /// True for peer ids whose inbound link is already established — a
  /// second HELLO with the same id means two processes were launched with
  /// the same --node.
  bool already_connected = false;
};

struct HelloVerdict {
  HelloStatus status = HelloStatus::kWelcome;
  std::string reason;  // empty on welcome
  bool ok() const { return status == HelloStatus::kWelcome; }
};

/// Pure validation of an inbound HELLO; the transport turns the verdict
/// into a WELCOME or REJECT reply.
inline HelloVerdict validate_hello(const HelloFrame& hello,
                                   const HelloExpectation& expect) {
  if (hello.magic != kHelloMagic) {
    return {HelloStatus::kBadMagic, "bad magic (not a graph-engine peer)"};
  }
  if (hello.version != kClusterProtocolVersion) {
    return {HelloStatus::kVersionMismatch,
            "protocol version mismatch: peer speaks v" +
                std::to_string(hello.version) + ", this node speaks v" +
                std::to_string(kClusterProtocolVersion)};
  }
  if (hello.cluster_size != expect.cluster_size) {
    return {HelloStatus::kClusterSizeMismatch,
            "cluster size mismatch: peer expects " +
                std::to_string(hello.cluster_size) + " nodes, this node " +
                std::to_string(expect.cluster_size)};
  }
  if (hello.node_id < 0 || hello.node_id >= expect.cluster_size) {
    return {HelloStatus::kNodeIdOutOfRange,
            "node id " + std::to_string(hello.node_id) +
                " outside [0, " + std::to_string(expect.cluster_size) + ")"};
  }
  if (hello.node_id == expect.local_node || expect.already_connected) {
    return {HelloStatus::kNodeIdCollision,
            "node id collision: a node " + std::to_string(hello.node_id) +
                " is already part of this mesh"};
  }
  if (hello.shard_epoch != expect.shard_epoch ||
      hello.shard_fingerprint != expect.shard_fingerprint) {
    return {HelloStatus::kShardMapMismatch,
            "shard map mismatch: peer has epoch " +
                std::to_string(hello.shard_epoch) + "/fp " +
                std::to_string(hello.shard_fingerprint) +
                ", this node epoch " + std::to_string(expect.shard_epoch) +
                "/fp " + std::to_string(expect.shard_fingerprint) +
                " (nodes must boot from identical cluster configs)"};
  }
  return {};
}

}  // namespace ppr
