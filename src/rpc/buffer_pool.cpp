#include "rpc/buffer_pool.hpp"

namespace ppr {

BufferPool::BufferPool(std::size_t max_pooled, bool register_metrics,
                       const std::string& metric_prefix)
    : max_pooled_(max_pooled) {
  if (register_metrics) {
    auto& reg = obs::MetricRegistry::global();
    metric_regs_.push_back(
        reg.attach(metric_prefix + ".acquired", {}, stats_.acquired));
    metric_regs_.push_back(
        reg.attach(metric_prefix + ".reused", {}, stats_.reused));
    metric_regs_.push_back(
        reg.attach(metric_prefix + ".created", {}, stats_.created));
    metric_regs_.push_back(
        reg.attach(metric_prefix + ".grown", {}, stats_.grown));
    metric_regs_.push_back(
        reg.attach(metric_prefix + ".released", {}, stats_.released));
    metric_regs_.push_back(
        reg.attach(metric_prefix + ".dropped", {}, stats_.dropped));
  }
}

BufferPool& BufferPool::global() {
  // Attaching forces MetricRegistry::global() to be constructed first, so
  // it is destroyed after this pool and the detach in ~Registration always
  // hits a live registry.
  static BufferPool pool(256, /*register_metrics=*/true);
  return pool;
}

std::vector<std::uint8_t> BufferPool::acquire(std::size_t reserve) {
  stats_.acquired.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::uint8_t> buf;
  {
    LockGuard<Spinlock> guard(lock_);
    if (!free_.empty()) {
      buf = std::move(free_.back());
      free_.pop_back();
    }
  }
  if (buf.capacity() == 0) {
    stats_.created.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.reused.fetch_add(1, std::memory_order_relaxed);
    if (buf.capacity() < reserve) {
      stats_.grown.fetch_add(1, std::memory_order_relaxed);
    }
  }
  buf.clear();
  if (reserve != 0) buf.reserve(reserve);
  return buf;
}

void BufferPool::release(std::vector<std::uint8_t>&& buf) {
  if (buf.capacity() == 0) return;  // moved-from or never-filled vector
  stats_.released.fetch_add(1, std::memory_order_relaxed);
  {
    LockGuard<Spinlock> guard(lock_);
    if (free_.size() < max_pooled_) {
      free_.push_back(std::move(buf));
      return;
    }
  }
  stats_.dropped.fetch_add(1, std::memory_order_relaxed);
}

std::size_t BufferPool::idle_buffers() const {
  LockGuard<Spinlock> guard(lock_);
  return free_.size();
}

}  // namespace ppr
