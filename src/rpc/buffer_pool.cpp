#include "rpc/buffer_pool.hpp"

namespace ppr {

BufferPool& BufferPool::global() {
  static BufferPool pool;
  return pool;
}

std::vector<std::uint8_t> BufferPool::acquire(std::size_t reserve) {
  stats_.acquired.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::uint8_t> buf;
  {
    LockGuard<Spinlock> guard(lock_);
    if (!free_.empty()) {
      buf = std::move(free_.back());
      free_.pop_back();
    }
  }
  if (buf.capacity() == 0) {
    stats_.created.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.reused.fetch_add(1, std::memory_order_relaxed);
    if (buf.capacity() < reserve) {
      stats_.grown.fetch_add(1, std::memory_order_relaxed);
    }
  }
  buf.clear();
  if (reserve != 0) buf.reserve(reserve);
  return buf;
}

void BufferPool::release(std::vector<std::uint8_t>&& buf) {
  if (buf.capacity() == 0) return;  // moved-from or never-filled vector
  stats_.released.fetch_add(1, std::memory_order_relaxed);
  {
    LockGuard<Spinlock> guard(lock_);
    if (free_.size() < max_pooled_) {
      free_.push_back(std::move(buf));
      return;
    }
  }
  stats_.dropped.fetch_add(1, std::memory_order_relaxed);
}

std::size_t BufferPool::idle_buffers() const {
  LockGuard<Spinlock> guard(lock_);
  return free_.size();
}

}  // namespace ppr
