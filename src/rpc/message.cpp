#include "rpc/message.hpp"

#include "rpc/buffer_pool.hpp"

namespace ppr {

namespace {
/// Header layout (everything but the payload bytes): fixed fields, three
/// length-prefixed strings, then the payload length. Writing the payload
/// length last keeps header ‖ payload byte-identical to the historic flat
/// frame, so decode() still parses either encoding path.
void write_header(ByteWriter& w, const Message& m) {
  w.write(m.call_id);
  w.write(static_cast<std::uint8_t>(m.kind));
  w.write(m.src_machine);
  w.write(m.dst_machine);
  w.write(m.trace_id);
  w.write(m.parent_span);
  w.write_string(m.service);
  w.write_string(m.method);
  w.write_string(m.error);
  w.write<std::uint64_t>(m.payload.size());
}

std::size_t header_size(const Message& m) {
  return 8 + 1 + 4 + 4 + 8 + 8 + 8 * 4 + m.service.size() +
         m.method.size() + m.error.size();
}
}  // namespace

FrameView Message::encode_view() const {
  ByteWriter w(BufferPool::global().acquire(header_size(*this)));
  write_header(w, *this);
  return FrameView{w.take(), std::span<const std::uint8_t>(payload)};
}

std::vector<std::uint8_t> Message::encode() const {
  ByteWriter w;
  w.reserve(header_size(*this) + payload.size());
  write_header(w, *this);
  w.write_bytes(payload.data(), payload.size());
  return w.take();
}

Message Message::decode_header(std::span<const std::uint8_t> header,
                               std::uint64_t* payload_len) {
  ByteReader r(header);
  Message m;
  m.call_id = r.read<std::uint64_t>();
  m.kind = static_cast<MessageKind>(r.read<std::uint8_t>());
  m.src_machine = r.read<std::int32_t>();
  m.dst_machine = r.read<std::int32_t>();
  m.trace_id = r.read<std::uint64_t>();
  m.parent_span = r.read<std::uint64_t>();
  m.service = r.read_string();
  m.method = r.read_string();
  m.error = r.read_string();
  const auto len = r.read<std::uint64_t>();
  GE_CHECK(r.done(), "trailing bytes in message header");
  if (payload_len != nullptr) *payload_len = len;
  return m;
}

Message Message::decode(std::span<const std::uint8_t> frame) {
  ByteReader r(frame);
  Message m;
  m.call_id = r.read<std::uint64_t>();
  m.kind = static_cast<MessageKind>(r.read<std::uint8_t>());
  m.src_machine = r.read<std::int32_t>();
  m.dst_machine = r.read<std::int32_t>();
  m.trace_id = r.read<std::uint64_t>();
  m.parent_span = r.read<std::uint64_t>();
  m.service = r.read_string();
  m.method = r.read_string();
  m.error = r.read_string();
  m.payload = r.read_vec<std::uint8_t>();
  GE_CHECK(r.done(), "trailing bytes in message frame");
  return m;
}

std::size_t Message::wire_size() const {
  return header_size(*this) + payload.size();
}

}  // namespace ppr
