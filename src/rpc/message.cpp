#include "rpc/message.hpp"

namespace ppr {

std::vector<std::uint8_t> Message::encode() const {
  ByteWriter w;
  w.reserve(64 + service.size() + method.size() + error.size() +
            payload.size());
  w.write(call_id);
  w.write(static_cast<std::uint8_t>(kind));
  w.write(src_machine);
  w.write(dst_machine);
  w.write_string(service);
  w.write_string(method);
  w.write_string(error);
  w.write_vec(payload);
  return w.take();
}

Message Message::decode(std::span<const std::uint8_t> frame) {
  ByteReader r(frame);
  Message m;
  m.call_id = r.read<std::uint64_t>();
  m.kind = static_cast<MessageKind>(r.read<std::uint8_t>());
  m.src_machine = r.read<std::int32_t>();
  m.dst_machine = r.read<std::int32_t>();
  m.service = r.read_string();
  m.method = r.read_string();
  m.error = r.read_string();
  m.payload = r.read_vec<std::uint8_t>();
  GE_CHECK(r.done(), "trailing bytes in message frame");
  return m;
}

std::size_t Message::wire_size() const {
  // Frame header fields + strings + payload; close enough to encode().size()
  // without materializing the buffer.
  return 8 + 1 + 4 + 4 + 8 * 4 + service.size() + method.size() +
         error.size() + payload.size();
}

}  // namespace ppr
