#include "rpc/frame_io.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.hpp"
#include "rpc/buffer_pool.hpp"

namespace ppr::frame_io {

void writev_all(int fd, struct iovec* iov, int iovcnt) {
  while (iovcnt > 0) {
    struct msghdr mh {};
    mh.msg_iov = iov;
    mh.msg_iovlen = static_cast<std::size_t>(iovcnt);
    // sendmsg instead of writev: MSG_NOSIGNAL turns a departed peer into
    // an EPIPE error we can throw, not a SIGPIPE that kills the process.
    const ssize_t w = ::sendmsg(fd, &mh, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw RpcError(std::string("socket send failed: ") +
                     std::strerror(errno));
    }
    std::size_t done = static_cast<std::size_t>(w);
    while (iovcnt > 0 && done >= iov->iov_len) {
      done -= iov->iov_len;
      ++iov;
      --iovcnt;
    }
    if (iovcnt > 0) {
      iov->iov_base = static_cast<std::uint8_t*>(iov->iov_base) + done;
      iov->iov_len -= done;
    }
  }
}

bool read_exact(int fd, void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r == 0) return false;
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;  // peer shut down / reset mid-frame
    }
    p += static_cast<std::size_t>(r);
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

void write_message(int fd, std::mutex& write_mutex, Message msg) {
  FrameView view = msg.encode_view();
  std::uint64_t lens[2] = {view.header.size(), view.payload.size()};
  struct iovec iov[3];
  iov[0] = {lens, sizeof(lens)};
  iov[1] = {view.header.data(), view.header.size()};
  iov[2] = {const_cast<std::uint8_t*>(view.payload.data()),
            view.payload.size()};
  {
    std::lock_guard<std::mutex> lock(write_mutex);
    writev_all(fd, iov, view.payload.empty() ? 2 : 3);
  }
  // Both buffers are consumed: recycle them for the next message.
  BufferPool::global().release(std::move(view.header));
  BufferPool::global().release(std::move(msg.payload));
}

void write_control(int fd, std::mutex& write_mutex, ControlCode code) {
  std::uint64_t lens[2] = {kControlTag, static_cast<std::uint64_t>(code)};
  struct iovec iov[1];
  iov[0] = {lens, sizeof(lens)};
  std::lock_guard<std::mutex> lock(write_mutex);
  writev_all(fd, iov, 1);
}

ReadStatus read_frame(int fd, std::vector<std::uint8_t>& header_scratch,
                      Message& out, ControlCode& out_control) {
  std::uint64_t lens[2] = {0, 0};
  if (!read_exact(fd, lens, sizeof(lens))) return ReadStatus::kClosed;
  if (lens[0] == kControlTag) {
    out_control = static_cast<ControlCode>(lens[1]);
    return ReadStatus::kControl;
  }
  header_scratch.resize(lens[0]);
  if (!read_exact(fd, header_scratch.data(), lens[0])) {
    return ReadStatus::kClosed;
  }
  std::uint64_t expected = 0;
  out = Message::decode_header(header_scratch, &expected);
  GE_CHECK(expected == lens[1], "frame payload length mismatch");
  // The payload is read straight into a pool-recycled buffer that becomes
  // msg.payload — no flat frame, no second copy.
  std::vector<std::uint8_t> payload = BufferPool::global().acquire(lens[1]);
  payload.resize(lens[1]);
  if (lens[1] != 0 && !read_exact(fd, payload.data(), lens[1])) {
    BufferPool::global().release(std::move(payload));
    return ReadStatus::kClosed;
  }
  out.payload = std::move(payload);
  return ReadStatus::kMessage;
}

}  // namespace ppr::frame_io
