// Pooled byte-buffer arena for the RPC wire path.
//
// Every hop of a remote fetch used to allocate fresh heap buffers: the
// request encode, the frame copy, the server's response encode, and the
// delivered payload. BufferPool recycles those vectors across rounds so
// steady-state RPC traffic performs no buffer allocations: acquire() hands
// out a cleared buffer with its old capacity intact, release() returns it.
//
// Ownership contract (see DESIGN.md §10): a buffer has exactly one owner
// at a time. Whoever consumes the bytes releases the buffer — the socket
// sender after writev() returns, the server after the handler ran over the
// request payload, the fetch wrapper after decoding a response. Buffers
// that escape the RPC path (caller keeps the vector) are simply never
// released; the pool does not track them.
//
// Stats follow the SspprStatePool idiom: `created` counts lifetime buffer
// constructions and `grown` counts capacity growths on recycled buffers,
// so tests can warm the path and then assert both stay flat.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "concurrent/spinlock.hpp"

namespace ppr {

struct BufferPoolStats {
  std::atomic<std::uint64_t> acquired{0};  // total acquire() calls
  std::atomic<std::uint64_t> reused{0};    // served from the free list
  std::atomic<std::uint64_t> created{0};   // brand-new buffer constructed
  std::atomic<std::uint64_t> grown{0};     // recycled buffer had to realloc
  std::atomic<std::uint64_t> released{0};  // buffers returned
  std::atomic<std::uint64_t> dropped{0};   // returns beyond max_pooled

  /// Allocation events total: flat once the path is warm.
  std::uint64_t allocations() const {
    return created.load(std::memory_order_relaxed) +
           grown.load(std::memory_order_relaxed);
  }
  void reset() {
    acquired = 0;
    reused = 0;
    created = 0;
    grown = 0;
    released = 0;
    dropped = 0;
  }
};

class BufferPool {
 public:
  /// Keep at most `max_pooled` idle buffers; surplus releases free their
  /// memory (bounds the pool under bursty fan-out).
  explicit BufferPool(std::size_t max_pooled = 256)
      : max_pooled_(max_pooled) {}

  /// Process-wide pool shared by every transport/endpoint/pipeline. One
  /// pool (rather than per-endpoint) lets a buffer filled on machine A be
  /// recycled by machine B in the simulated cluster, exactly like a
  /// process-wide allocator would.
  static BufferPool& global();

  /// A cleared buffer with at least `reserve` capacity. Capacity from the
  /// free list is kept, so a warm pool serves any steady-state size
  /// without touching the allocator.
  std::vector<std::uint8_t> acquire(std::size_t reserve = 0);

  /// Return a buffer for reuse. Accepts any vector (not only ones that
  /// came from acquire()); moved-from empty vectors are dropped.
  void release(std::vector<std::uint8_t>&& buf);

  const BufferPoolStats& stats() const { return stats_; }
  BufferPoolStats& stats() { return stats_; }
  std::size_t idle_buffers() const;

 private:
  std::size_t max_pooled_;
  mutable Spinlock lock_;
  std::vector<std::vector<std::uint8_t>> free_;
  BufferPoolStats stats_;
};

}  // namespace ppr
