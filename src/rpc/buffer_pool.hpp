// Pooled byte-buffer arena for the RPC wire path.
//
// Every hop of a remote fetch used to allocate fresh heap buffers: the
// request encode, the frame copy, the server's response encode, and the
// delivered payload. BufferPool recycles those vectors across rounds so
// steady-state RPC traffic performs no buffer allocations: acquire() hands
// out a cleared buffer with its old capacity intact, release() returns it.
//
// Ownership contract (see DESIGN.md §10): a buffer has exactly one owner
// at a time. Whoever consumes the bytes releases the buffer — the socket
// sender after writev() returns, the server after the handler ran over the
// request payload, the fetch wrapper after decoding a response. Buffers
// that escape the RPC path (caller keeps the vector) are simply never
// released; the pool does not track them.
//
// Stats follow the SspprStatePool idiom: `created` counts lifetime buffer
// constructions and `grown` counts capacity growths on recycled buffers,
// so tests can warm the path and then assert both stay flat.
#pragma once

#include <cstdint>
#include <vector>

#include "concurrent/spinlock.hpp"
#include "obs/metrics.hpp"

namespace ppr {

/// Recycling counters, now registry instruments (obs/metrics.hpp): fields
/// keep the atomic-style API the tests use, and the global pool attaches
/// them under `rpc.buffer_pool.*` so they land in every metrics export.
struct BufferPoolStats {
  obs::ShardedCounter acquired;  // total acquire() calls
  obs::ShardedCounter reused;    // served from the free list
  obs::ShardedCounter created;   // brand-new buffer constructed
  obs::ShardedCounter grown;     // recycled buffer had to realloc
  obs::ShardedCounter released;  // buffers returned
  obs::ShardedCounter dropped;   // returns beyond max_pooled

  /// Allocation events total: flat once the path is warm.
  std::uint64_t allocations() const {
    return created.load(std::memory_order_relaxed) +
           grown.load(std::memory_order_relaxed);
  }
  void reset() {
    acquired = 0;
    reused = 0;
    created = 0;
    grown = 0;
    released = 0;
    dropped = 0;
  }
};

class BufferPool {
 public:
  /// Keep at most `max_pooled` idle buffers; surplus releases free their
  /// memory (bounds the pool under bursty fan-out). `register_metrics`
  /// attaches the counters to the global MetricRegistry under
  /// `<metric_prefix>.*` — on for the long-lived process-wide pools only
  /// (the wire path's global() as `rpc.buffer_pool`, the push kernel's
  /// round-scratch pool as `ppr.scratch_pool`), so transient pools in
  /// tests don't pollute the export.
  explicit BufferPool(std::size_t max_pooled = 256,
                      bool register_metrics = false,
                      const std::string& metric_prefix = "rpc.buffer_pool");

  /// Process-wide pool shared by every transport/endpoint/pipeline. One
  /// pool (rather than per-endpoint) lets a buffer filled on machine A be
  /// recycled by machine B in the simulated cluster, exactly like a
  /// process-wide allocator would.
  static BufferPool& global();

  /// A cleared buffer with at least `reserve` capacity. Capacity from the
  /// free list is kept, so a warm pool serves any steady-state size
  /// without touching the allocator.
  std::vector<std::uint8_t> acquire(std::size_t reserve = 0);

  /// Return a buffer for reuse. Accepts any vector (not only ones that
  /// came from acquire()); moved-from empty vectors are dropped.
  void release(std::vector<std::uint8_t>&& buf);

  const BufferPoolStats& stats() const { return stats_; }
  BufferPoolStats& stats() { return stats_; }
  std::size_t idle_buffers() const;

 private:
  std::size_t max_pooled_;
  mutable Spinlock lock_;
  std::vector<std::vector<std::uint8_t>> free_;
  BufferPoolStats stats_;
  std::vector<obs::Registration> metric_regs_;
};

}  // namespace ppr
