#pragma once

#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "rpc/transport.hpp"

namespace ppr {

/// Transport over a full mesh of Unix-domain stream socketpairs, one per
/// (ordered) machine pair including self-loops. Frames are 8-byte
/// little-endian length prefixes followed by Message::encode() bytes.
///
/// All machines live in the calling process (the harness model), but every
/// message crosses the kernel socket layer, so serialization, syscall, and
/// copy costs are real.
class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(int num_machines);
  ~SocketTransport() override;

  void start(int machine_id, MessageHandler handler) override;
  void send(Message msg) override;
  void detach(int machine_id) override;
  void stop() override;
  int num_machines() const override { return num_machines_; }

 private:
  struct Link {
    int write_fd = -1;   // sender side, owned by src machine
    std::mutex write_mutex;
  };
  struct Machine {
    MessageHandler handler;
    std::vector<int> read_fds;          // one per peer
    std::vector<std::thread> readers;   // one per peer
    bool started = false;
  };

  void reader_loop(Machine& m, int fd);

  int num_machines_;
  // links_[src * num_machines_ + dst]
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Machine>> machines_;
  bool stopped_ = false;
};

}  // namespace ppr
