#include "rpc/socket_transport.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include "common/check.hpp"
#include "common/log.hpp"
#include "rpc/frame_io.hpp"

namespace ppr {

SocketTransport::SocketTransport(int num_machines)
    : num_machines_(num_machines) {
  GE_REQUIRE(num_machines > 0, "need at least one machine");
  const auto n = static_cast<std::size_t>(num_machines);
  links_.resize(n * n);
  machines_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    machines_[i] = std::make_unique<Machine>();
    machines_[i]->read_fds.resize(n, -1);
  }
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      int fds[2];
      GE_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
               "socketpair failed");
      auto link = std::make_unique<Link>();
      link->write_fd = fds[0];
      machines_[dst]->read_fds[src] = fds[1];
      links_[src * n + dst] = std::move(link);
    }
  }
}

SocketTransport::~SocketTransport() { stop(); }

void SocketTransport::start(int machine_id, MessageHandler handler) {
  GE_REQUIRE(machine_id >= 0 && machine_id < num_machines_,
             "machine_id out of range");
  Machine& m = *machines_[static_cast<std::size_t>(machine_id)];
  GE_REQUIRE(!m.started, "machine already started");
  m.handler = std::move(handler);
  m.started = true;
  for (const int fd : m.read_fds) {
    m.readers.emplace_back([this, &m, fd] { reader_loop(m, fd); });
  }
}

void SocketTransport::send(Message msg) {
  GE_REQUIRE(msg.dst_machine >= 0 && msg.dst_machine < num_machines_,
             "dst_machine out of range");
  GE_REQUIRE(msg.src_machine >= 0 && msg.src_machine < num_machines_,
             "src_machine out of range");
  const auto n = static_cast<std::size_t>(num_machines_);
  Link& link = *links_[static_cast<std::size_t>(msg.src_machine) * n +
                       static_cast<std::size_t>(msg.dst_machine)];
  // Scatter-gathered data frame straight from the message buffers (see
  // frame_io.hpp for the wire layout shared with TcpTransport).
  frame_io::write_message(link.write_fd, link.write_mutex, std::move(msg));
}

void SocketTransport::reader_loop(Machine& m, int fd) {
  std::vector<std::uint8_t> header;
  for (;;) {
    Message msg;
    frame_io::ControlCode control{};
    switch (frame_io::read_frame(fd, header, msg, control)) {
      case frame_io::ReadStatus::kClosed:
        return;
      case frame_io::ReadStatus::kControl:
        // The socketpair mesh never negotiates; a kLeave (or any other
        // control frame) just means the peer is done with this link.
        return;
      case frame_io::ReadStatus::kMessage:
        m.handler(std::move(msg));
        break;
    }
  }
}

void SocketTransport::detach(int machine_id) {
  GE_REQUIRE(machine_id >= 0 && machine_id < num_machines_,
             "machine_id out of range");
  Machine& m = *machines_[static_cast<std::size_t>(machine_id)];
  if (!m.started) return;
  // Half-close this machine's receive side only: its readers see EOF and
  // exit, and joining them guarantees no thread is inside m.handler
  // afterwards. Fds are closed later by stop().
  for (const int fd : m.read_fds) {
    if (fd >= 0) ::shutdown(fd, SHUT_RD);
  }
  for (auto& t : m.readers) {
    if (t.joinable()) t.join();
  }
}

void SocketTransport::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& link : links_) {
    if (link && link->write_fd >= 0) {
      ::shutdown(link->write_fd, SHUT_RDWR);
    }
  }
  for (auto& m : machines_) {
    for (const int fd : m->read_fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& m : machines_) {
    for (auto& t : m->readers) {
      if (t.joinable()) t.join();
    }
  }
  for (auto& link : links_) {
    if (link && link->write_fd >= 0) {
      ::close(link->write_fd);
      link->write_fd = -1;
    }
  }
  for (auto& m : machines_) {
    for (int& fd : m->read_fds) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
  }
}

}  // namespace ppr
