#include "rpc/socket_transport.hpp"

#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cstring>

#include "common/check.hpp"
#include "common/log.hpp"
#include "rpc/buffer_pool.hpp"

namespace ppr {

namespace {

/// Gather-write every byte of `iov[0..iovcnt)`, handling partial writes
/// and EINTR. The payload span is transmitted straight from the message's
/// own buffer — this is the zero-copy half of the FrameView design.
void writev_all(int fd, struct iovec* iov, int iovcnt) {
  while (iovcnt > 0) {
    const ssize_t w = ::writev(fd, iov, iovcnt);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw RpcError(std::string("socket writev failed: ") +
                     std::strerror(errno));
    }
    std::size_t done = static_cast<std::size_t>(w);
    while (iovcnt > 0 && done >= iov->iov_len) {
      done -= iov->iov_len;
      ++iov;
      --iovcnt;
    }
    if (iovcnt > 0) {
      iov->iov_base = static_cast<std::uint8_t*>(iov->iov_base) + done;
      iov->iov_len -= done;
    }
  }
}

/// Returns false on orderly EOF.
bool read_all(int fd, void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r == 0) return false;
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;  // peer shut down mid-frame during stop()
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

SocketTransport::SocketTransport(int num_machines)
    : num_machines_(num_machines) {
  GE_REQUIRE(num_machines > 0, "need at least one machine");
  const auto n = static_cast<std::size_t>(num_machines);
  links_.resize(n * n);
  machines_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    machines_[i] = std::make_unique<Machine>();
    machines_[i]->read_fds.resize(n, -1);
  }
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      int fds[2];
      GE_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
               "socketpair failed");
      auto link = std::make_unique<Link>();
      link->write_fd = fds[0];
      machines_[dst]->read_fds[src] = fds[1];
      links_[src * n + dst] = std::move(link);
    }
  }
}

SocketTransport::~SocketTransport() { stop(); }

void SocketTransport::start(int machine_id, MessageHandler handler) {
  GE_REQUIRE(machine_id >= 0 && machine_id < num_machines_,
             "machine_id out of range");
  Machine& m = *machines_[static_cast<std::size_t>(machine_id)];
  GE_REQUIRE(!m.started, "machine already started");
  m.handler = std::move(handler);
  m.started = true;
  for (const int fd : m.read_fds) {
    m.readers.emplace_back([this, &m, fd] { reader_loop(m, fd); });
  }
}

void SocketTransport::send(Message msg) {
  GE_REQUIRE(msg.dst_machine >= 0 && msg.dst_machine < num_machines_,
             "dst_machine out of range");
  GE_REQUIRE(msg.src_machine >= 0 && msg.src_machine < num_machines_,
             "src_machine out of range");
  const auto n = static_cast<std::size_t>(num_machines_);
  Link& link = *links_[static_cast<std::size_t>(msg.src_machine) * n +
                       static_cast<std::size_t>(msg.dst_machine)];
  // Frame: [u64 header_len][u64 payload_len][header][payload], gathered
  // into one writev so the payload goes from the message buffer to the
  // kernel with no intermediate flat-frame copy.
  FrameView view = msg.encode_view();
  std::uint64_t lens[2] = {view.header.size(), view.payload.size()};
  struct iovec iov[3];
  iov[0] = {lens, sizeof(lens)};
  iov[1] = {view.header.data(), view.header.size()};
  iov[2] = {const_cast<std::uint8_t*>(view.payload.data()),
            view.payload.size()};
  {
    std::lock_guard<std::mutex> lock(link.write_mutex);
    writev_all(link.write_fd, iov, view.payload.empty() ? 2 : 3);
  }
  // Both buffers are consumed: recycle them for the next message.
  BufferPool::global().release(std::move(view.header));
  BufferPool::global().release(std::move(msg.payload));
}

void SocketTransport::reader_loop(Machine& m, int fd) {
  std::vector<std::uint8_t> header;
  for (;;) {
    std::uint64_t lens[2] = {0, 0};
    if (!read_all(fd, lens, sizeof(lens))) return;
    header.resize(lens[0]);
    if (!read_all(fd, header.data(), lens[0])) return;
    std::uint64_t expected = 0;
    Message msg = Message::decode_header(header, &expected);
    GE_CHECK(expected == lens[1], "frame payload length mismatch");
    // The payload is read straight into a pool-recycled buffer that
    // becomes msg.payload — no flat frame, no second copy.
    std::vector<std::uint8_t> payload =
        BufferPool::global().acquire(lens[1]);
    payload.resize(lens[1]);
    if (lens[1] != 0 && !read_all(fd, payload.data(), lens[1])) {
      BufferPool::global().release(std::move(payload));
      return;
    }
    msg.payload = std::move(payload);
    m.handler(std::move(msg));
  }
}

void SocketTransport::detach(int machine_id) {
  GE_REQUIRE(machine_id >= 0 && machine_id < num_machines_,
             "machine_id out of range");
  Machine& m = *machines_[static_cast<std::size_t>(machine_id)];
  if (!m.started) return;
  // Half-close this machine's receive side only: its readers see EOF and
  // exit, and joining them guarantees no thread is inside m.handler
  // afterwards. Fds are closed later by stop().
  for (const int fd : m.read_fds) {
    if (fd >= 0) ::shutdown(fd, SHUT_RD);
  }
  for (auto& t : m.readers) {
    if (t.joinable()) t.join();
  }
}

void SocketTransport::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& link : links_) {
    if (link && link->write_fd >= 0) {
      ::shutdown(link->write_fd, SHUT_RDWR);
    }
  }
  for (auto& m : machines_) {
    for (const int fd : m->read_fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& m : machines_) {
    for (auto& t : m->readers) {
      if (t.joinable()) t.join();
    }
  }
  for (auto& link : links_) {
    if (link && link->write_fd >= 0) {
      ::close(link->write_fd);
      link->write_fd = -1;
    }
  }
  for (auto& m : machines_) {
    for (int& fd : m->read_fds) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
  }
}

}  // namespace ppr
