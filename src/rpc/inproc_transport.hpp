#pragma once

#include <memory>
#include <thread>
#include <vector>

#include "concurrent/concurrent_queue.hpp"
#include "rpc/transport.hpp"

namespace ppr {

/// In-process transport: one inbox queue + dispatcher thread per machine.
/// The dispatcher applies the NetworkModel delay before invoking the
/// handler, modeling a single serialized delivery channel per machine
/// (receive-side NIC). Messages between a machine and itself bypass the
/// network model (shared-memory access in the paper's setup).
///
/// Delivery is frame-free: the Message moves through the queue intact, so
/// neither end pays an encode/decode or a payload copy. The cost model
/// still charges Message::wire_size() — the exact header + payload bytes
/// the frame *would* occupy — so simulated bandwidth matches the socket
/// transport's scatter-gather framing byte for byte.
class InProcTransport final : public Transport {
 public:
  InProcTransport(int num_machines, NetworkModel model = NetworkModel{});
  ~InProcTransport() override;

  void start(int machine_id, MessageHandler handler) override;
  void send(Message msg) override;
  void detach(int machine_id) override;
  void stop() override;
  int num_machines() const override { return static_cast<int>(boxes_.size()); }

 private:
  struct Box {
    ConcurrentQueue<Message> inbox;
    MessageHandler handler;
    std::thread dispatcher;
    bool started = false;
  };

  void dispatch_loop(Box& box);

  NetworkModel model_;
  std::vector<std::unique_ptr<Box>> boxes_;
  bool stopped_ = false;
};

}  // namespace ppr
