#include "rpc/inproc_transport.hpp"

#include <chrono>

#include "common/check.hpp"
#include "common/timer.hpp"

namespace ppr {

namespace {
/// Delay delivery by sleeping. Sleeping (not spinning) matters: the
/// simulation may run on far fewer cores than it has machine threads, and
/// a delayed message must leave the CPU to the computing processes —
/// exactly what a real NIC does. Kernel timer granularity adds tens of
/// microseconds, which is in line with a real RPC stack's jitter.
void delivery_delay_us(double us) {
  if (us <= 0) return;
  std::this_thread::sleep_for(
      std::chrono::nanoseconds(static_cast<long>(us * 1e3)));
}
}  // namespace

InProcTransport::InProcTransport(int num_machines, NetworkModel model)
    : model_(model) {
  GE_REQUIRE(num_machines > 0, "need at least one machine");
  boxes_.reserve(static_cast<std::size_t>(num_machines));
  for (int i = 0; i < num_machines; ++i) {
    boxes_.push_back(std::make_unique<Box>());
  }
}

InProcTransport::~InProcTransport() { stop(); }

void InProcTransport::start(int machine_id, MessageHandler handler) {
  GE_REQUIRE(machine_id >= 0 && machine_id < num_machines(),
             "machine_id out of range");
  Box& box = *boxes_[static_cast<std::size_t>(machine_id)];
  GE_REQUIRE(!box.started, "machine already started");
  box.handler = std::move(handler);
  box.started = true;
  box.dispatcher = std::thread([this, &box] { dispatch_loop(box); });
}

void InProcTransport::send(Message msg) {
  GE_REQUIRE(msg.dst_machine >= 0 && msg.dst_machine < num_machines(),
             "dst_machine out of range");
  Box& box = *boxes_[static_cast<std::size_t>(msg.dst_machine)];
  GE_CHECK(box.started, "destination machine not started");
  box.inbox.push(std::move(msg));
}

void InProcTransport::dispatch_loop(Box& box) {
  for (;;) {
    auto msg = box.inbox.pop();
    if (!msg.has_value()) return;
    if (model_.enabled() && msg->src_machine != msg->dst_machine) {
      delivery_delay_us(model_.delay_us(msg->wire_size()));
    }
    box.handler(std::move(*msg));
  }
}

void InProcTransport::detach(int machine_id) {
  GE_REQUIRE(machine_id >= 0 && machine_id < num_machines(),
             "machine_id out of range");
  Box& box = *boxes_[static_cast<std::size_t>(machine_id)];
  if (!box.started) return;
  // Closing the inbox makes the dispatcher drain and exit; joining it
  // guarantees no thread is inside box.handler afterwards. `started`
  // stays true so late peer sends are queued (and dropped) rather than
  // failing the send-side check.
  box.inbox.close();
  if (box.dispatcher.joinable()) box.dispatcher.join();
}

void InProcTransport::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& box : boxes_) box->inbox.close();
  for (auto& box : boxes_) {
    if (box->dispatcher.joinable()) box->dispatcher.join();
  }
}

}  // namespace ppr
