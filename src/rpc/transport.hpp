// Transport abstraction: moves Messages between machines.
//
// Two implementations:
//   * InProcTransport — simulated machines inside one process, with a
//     configurable network cost model (per-message latency + bandwidth).
//     This reproduces the paper's single-server simulation of a cluster
//     while keeping the fixed per-RPC overhead that makes small frequent
//     messages expensive (the phenomenon §3.2.3 optimizes away).
//   * SocketTransport — real Unix socketpair mesh with length-prefixed
//     frames; exercises the OS networking path for integration tests.
#pragma once

#include <cstdint>
#include <functional>

#include "rpc/message.hpp"

namespace ppr {

/// Invoked on a transport-owned thread for every delivered message.
using MessageHandler = std::function<void(Message)>;

/// Cost model applied per delivered message by InProcTransport.
/// Defaults approximate a TensorPipe-class RPC stack over fast
/// interconnect: ~100µs fixed cost per call (Python + serialization +
/// transport), multi-GB/s streaming rate.
struct NetworkModel {
  double latency_us = 100.0;         // fixed per-message delivery latency
  double bandwidth_gbps = 8.0;       // payload streaming rate
  bool enabled() const { return latency_us > 0 || bandwidth_gbps > 0; }
  /// Delivery delay in microseconds for a message of `bytes` bytes.
  double delay_us(std::size_t bytes) const {
    double us = latency_us;
    if (bandwidth_gbps > 0) {
      us += static_cast<double>(bytes) * 8.0 / (bandwidth_gbps * 1e3);
    }
    return us;
  }
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Register machine `machine_id`'s receive handler and start delivering
  /// messages to it. Must be called once per machine before any send.
  virtual void start(int machine_id, MessageHandler handler) = 0;

  /// Asynchronously send `msg` to `msg.dst_machine`. Never blocks on the
  /// destination's handler.
  virtual void send(Message msg) = 0;

  /// Stop delivery to one machine and join its delivery threads; after
  /// this returns no thread is inside that machine's handler. Endpoints
  /// call this from their destructor so a handler can never outlive the
  /// state it captures. Idempotent; other machines are unaffected.
  virtual void detach(int machine_id) = 0;

  /// Stop all delivery threads. Idempotent.
  virtual void stop() = 0;

  /// Register a callback invoked (on a transport thread) when the link to
  /// `peer` reaches EOF and no further frames — in particular no pending
  /// responses — can ever arrive from it. Endpoints use this to fail
  /// in-flight calls to a dead peer instead of waiting forever. Must be
  /// called before start(). In-process transports never lose a peer, so
  /// the default is a no-op.
  virtual void set_peer_down_handler(int /*machine_id*/,
                                     std::function<void(int)> /*on_down*/) {}

  virtual int num_machines() const = 0;
};

}  // namespace ppr
