// Future/promise pair for asynchronous results.
//
// Matches the semantics the paper relies on from torch.futures: issue many
// async calls, keep computing locally, then wait() on each future. The
// templated Future<T>/Promise<T> carry any payload type; the RPC layer
// instantiates them with raw response bytes (RpcFuture/RpcPromise), the
// online query service with typed query results.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace ppr {

namespace detail {
template <typename T>
struct FutureState {
  std::mutex mutex;
  std::condition_variable cv;
  bool ready = false;
  bool consumed = false;  // wait() already moved the value out
  T value{};
  std::string error;  // non-empty => wait() throws RpcError
};
}  // namespace detail

template <typename T>
class Future {
 public:
  Future() = default;
  explicit Future(std::shared_ptr<detail::FutureState<T>> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }

  bool ready() const {
    GE_CHECK(valid(), "wait on invalid future");
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->ready;
  }

  /// Bounded wait: true once the result (value or error) is ready, false
  /// when `timeout` elapses first. Does not consume — follow up with
  /// wait(). The retry plane uses this as the per-call RPC timeout: a
  /// false return means the target is unresponsive and the caller may
  /// re-issue elsewhere while this future stays pending.
  template <typename Rep, typename Period>
  bool wait_ready_for(std::chrono::duration<Rep, Period> timeout) const {
    GE_REQUIRE(valid(), "wait on invalid future");
    std::unique_lock<std::mutex> lock(state_->mutex);
    return state_->cv.wait_for(lock, timeout,
                               [&] { return state_->ready; });
  }

  /// Blocks until the result arrives; returns the value (moved out, so
  /// wait() consumes the future). Throws RpcError if the producer failed.
  /// A consumed future is invalid: waiting twice — on this handle or on a
  /// copy sharing the same state — fails a GE_REQUIRE instead of silently
  /// returning a moved-out payload.
  T wait() {
    GE_REQUIRE(valid(), "wait on invalid future");
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->ready; });
    GE_REQUIRE(!state_->consumed, "future already waited (value consumed)");
    if (!state_->error.empty()) {
      const std::string error = state_->error;
      lock.unlock();
      state_.reset();
      throw RpcError(error);
    }
    state_->consumed = true;
    T value = std::move(state_->value);
    lock.unlock();
    state_.reset();  // this handle reads as invalid after wait()
    return value;
  }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<detail::FutureState<T>>()) {}

  Future<T> get_future() const { return Future<T>(state_); }

  void set_value(T value) {
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      GE_CHECK(!state_->ready, "promise already satisfied");
      state_->value = std::move(value);
      state_->ready = true;
    }
    state_->cv.notify_all();
  }

  void set_error(std::string error) {
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      GE_CHECK(!state_->ready, "promise already satisfied");
      state_->error = std::move(error);
      state_->ready = true;
    }
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

/// The RPC layer's instantiation: futures of raw response payloads.
using RpcFuture = Future<std::vector<std::uint8_t>>;
using RpcPromise = Promise<std::vector<std::uint8_t>>;

}  // namespace ppr
