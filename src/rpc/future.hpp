// Future/promise pair for asynchronous RPC results.
//
// Matches the semantics the paper relies on from torch.futures: issue many
// async calls, keep computing locally, then wait() on each future.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace ppr {

namespace detail {
struct FutureState {
  std::mutex mutex;
  std::condition_variable cv;
  bool ready = false;
  std::vector<std::uint8_t> payload;
  std::string error;  // non-empty => wait() throws RpcError
};
}  // namespace detail

class RpcFuture {
 public:
  RpcFuture() = default;
  explicit RpcFuture(std::shared_ptr<detail::FutureState> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }

  bool ready() const {
    GE_CHECK(valid(), "wait on invalid future");
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->ready;
  }

  /// Blocks until the response arrives; returns the response payload.
  /// Throws RpcError if the remote handler failed.
  std::vector<std::uint8_t> wait() {
    GE_CHECK(valid(), "wait on invalid future");
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->ready; });
    if (!state_->error.empty()) throw RpcError(state_->error);
    return std::move(state_->payload);
  }

 private:
  std::shared_ptr<detail::FutureState> state_;
};

class RpcPromise {
 public:
  RpcPromise() : state_(std::make_shared<detail::FutureState>()) {}

  RpcFuture get_future() const { return RpcFuture(state_); }

  void set_value(std::vector<std::uint8_t> payload) {
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      GE_CHECK(!state_->ready, "promise already satisfied");
      state_->payload = std::move(payload);
      state_->ready = true;
    }
    state_->cv.notify_all();
  }

  void set_error(std::string error) {
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      GE_CHECK(!state_->ready, "promise already satisfied");
      state_->error = std::move(error);
      state_->ready = true;
    }
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<detail::FutureState> state_;
};

}  // namespace ppr
