#include "rpc/endpoint.hpp"

#include "common/log.hpp"
#include "obs/trace.hpp"
#include "rpc/buffer_pool.hpp"

namespace ppr {

RpcEndpoint::RpcEndpoint(std::shared_ptr<Transport> transport, int machine_id,
                         int server_threads)
    : transport_(std::move(transport)),
      machine_id_(machine_id),
      server_pool_(static_cast<std::size_t>(server_threads)) {
  GE_REQUIRE(transport_ != nullptr, "transport is null");
  transport_->set_peer_down_handler(
      machine_id_, [this](int peer) { on_peer_down(peer); });
  transport_->start(machine_id_, [this](Message msg) {
    on_message(std::move(msg));
  });
}

RpcEndpoint::~RpcEndpoint() {
  // Quiesce delivery before any member is torn down: after detach() no
  // transport thread can be inside on_message, so the server pool (and
  // the pending-call table) cannot be touched mid-destruction.
  transport_->detach(machine_id_);
}

void RpcEndpoint::register_service(const std::string& name,
                                   ServiceHandler handler,
                                   ThreadPool* pool) {
  std::lock_guard<std::mutex> lock(services_mutex_);
  GE_REQUIRE(
      services_.emplace(name, ServiceEntry{std::move(handler), pool}).second,
      "service name already registered: " + name);
}

RpcFuture RpcEndpoint::async_call(int dst, const std::string& service,
                                  const std::string& method,
                                  std::vector<std::uint8_t> payload) {
  Message msg;
  msg.call_id = next_call_id_.fetch_add(1, std::memory_order_relaxed);
  msg.kind = MessageKind::kRequest;
  msg.src_machine = machine_id_;
  msg.dst_machine = dst;
  msg.service = service;
  msg.method = method;
  msg.payload = std::move(payload);
  // Ship the caller's trace context in the frame header so the server-side
  // handler's spans nest under the span that issued this call.
  if (obs::Tracer::enabled()) {
    const obs::TraceContext ctx = obs::current_trace();
    msg.trace_id = ctx.trace_id;
    msg.parent_span = ctx.span_id;
  }

  RpcPromise promise;
  RpcFuture future = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.emplace(msg.call_id, PendingCall{std::move(promise), dst});
  }
  const std::uint64_t call_id = msg.call_id;
  try {
    transport_->send(std::move(msg));
  } catch (...) {
    // The call never left this process; retire its table entry so the
    // id isn't orphaned (the caller sees the send error instead).
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.erase(call_id);
    throw;
  }
  return future;
}

std::vector<std::uint8_t> RpcEndpoint::sync_call(
    int dst, const std::string& service, const std::string& method,
    std::vector<std::uint8_t> payload) {
  return async_call(dst, service, method, std::move(payload)).wait();
}

std::vector<std::uint8_t> RpcEndpoint::local_call(
    const std::string& service, const std::string& method,
    std::span<const std::uint8_t> payload) {
  ServiceHandler* handler = nullptr;
  {
    std::lock_guard<std::mutex> lock(services_mutex_);
    const auto it = services_.find(service);
    GE_REQUIRE(it != services_.end(), "unknown service: " + service);
    handler = &it->second.handler;
  }
  // Handlers are registered once before traffic starts and never removed,
  // so the pointer remains valid outside the lock.
  return (*handler)(method, payload);
}

void RpcEndpoint::on_message(Message msg) {
  if (msg.kind == MessageKind::kRequest) {
    // Hand off to the service's dispatch pool (the shared server pool by
    // default) so the transport dispatcher is never blocked behind a
    // long-running handler.
    ThreadPool* pool = &server_pool_;
    {
      std::lock_guard<std::mutex> lock(services_mutex_);
      const auto it = services_.find(msg.service);
      if (it != services_.end() && it->second.pool != nullptr) {
        pool = it->second.pool;
      }
    }
    auto shared = std::make_shared<Message>(std::move(msg));
    pool->submit([this, shared] { handle_request(std::move(*shared)); });
    return;
  }
  RpcPromise promise;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    const auto it = pending_.find(msg.call_id);
    if (it == pending_.end()) {
      GE_LOG(kWarn) << "dropping response for unknown call " << msg.call_id;
      return;
    }
    promise = std::move(it->second.promise);
    pending_.erase(it);
  }
  if (msg.error.empty()) {
    promise.set_value(std::move(msg.payload));
  } else {
    promise.set_error(std::move(msg.error));
  }
}

void RpcEndpoint::add_peer_down_hook(std::function<void(int)> hook) {
  GE_REQUIRE(hook != nullptr, "peer-down hook is null");
  std::lock_guard<std::mutex> lock(hooks_mutex_);
  peer_down_hooks_.push_back(std::move(hook));
}

void RpcEndpoint::on_peer_down(int peer) {
  // Observers (routing-table failover) run BEFORE pending calls fail:
  // a retry loop woken by fail_pending_to must already see the promoted
  // map, otherwise it would re-resolve to the peer that just died.
  std::vector<std::function<void(int)>> hooks;
  {
    std::lock_guard<std::mutex> lock(hooks_mutex_);
    hooks = peer_down_hooks_;
  }
  for (const auto& hook : hooks) hook(peer);
  fail_pending_to(peer);
}

void RpcEndpoint::fail_pending_to(int peer) {
  std::vector<std::pair<std::uint64_t, RpcPromise>> doomed;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.dst == peer) {
        doomed.emplace_back(it->first, std::move(it->second.promise));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& [call_id, promise] : doomed) {
    GE_LOG(kWarn) << "failing call " << call_id << ": peer " << peer
                  << " closed the connection with the call in flight";
    promise.set_error("peer " + std::to_string(peer) +
                      " closed the connection with the call in flight");
  }
}

void RpcEndpoint::handle_request(Message msg) {
  Message reply;
  reply.call_id = msg.call_id;
  reply.kind = MessageKind::kResponse;
  reply.src_machine = machine_id_;
  reply.dst_machine = msg.src_machine;
  try {
    if (msg.trace_id != 0 && obs::Tracer::enabled()) {
      // Adopt the caller's context: the handler span carries the client's
      // trace id and parents onto the span that issued the call.
      obs::TraceBinding bind(
          obs::TraceContext{msg.trace_id, msg.parent_span});
      obs::ScopedSpan span("rpc.server." + msg.method);
      reply.payload = local_call(msg.service, msg.method, msg.payload);
    } else {
      reply.payload = local_call(msg.service, msg.method, msg.payload);
    }
  } catch (const std::exception& e) {
    reply.error = e.what();
  }
  // The request payload is fully consumed by the handler; recycle it for
  // the next frame instead of freeing it.
  BufferPool::global().release(std::move(msg.payload));
  try {
    transport_->send(std::move(reply));
  } catch (const RpcError& e) {
    // The caller left the mesh between sending the request and our reply
    // (e.g. a client that timed out and departed) — nothing to deliver to.
    GE_LOG(kWarn) << "dropping reply for call " << msg.call_id << ": "
                  << e.what();
  }
}

}  // namespace ppr
