#include "rpc/tcp_transport.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/check.hpp"
#include "common/log.hpp"
#include "rpc/frame_io.hpp"
#include "rpc/wire_protocol.hpp"

namespace ppr {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what) {
  throw RpcError(what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  int one = 1;
  // Best effort: the mesh still works with Nagle on, just slower for the
  // small control/header writes.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_recv_timeout(int fd, double seconds) {
  struct timeval tv {};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - tv.tv_sec) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void clear_recv_timeout(int fd) {
  struct timeval tv {};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

struct AddrInfo {
  struct addrinfo* res = nullptr;
  ~AddrInfo() {
    if (res != nullptr) ::freeaddrinfo(res);
  }
};

double remaining_s(Clock::time_point deadline) {
  return std::chrono::duration<double>(deadline - Clock::now()).count();
}

}  // namespace

TcpTransport::TcpTransport(int local_node, std::vector<TcpPeer> peers,
                           TcpTransportOptions options)
    : local_node_(local_node),
      peers_(std::move(peers)),
      options_(options),
      departed_(peers_.size()) {
  GE_REQUIRE(!peers_.empty(), "cluster needs at least one node");
  GE_REQUIRE(local_node_ >= 0 &&
                 local_node_ < static_cast<int>(peers_.size()),
             "local node id out of range");

  // Bind + listen immediately so peers that boot earlier can start
  // knocking; connections queue in the backlog until connect_mesh().
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("tcp listener socket failed");
  int one = 1;
  // SO_REUSEADDR: restarted nodes must rebind their port without waiting
  // out TIME_WAIT from the previous incarnation.
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port =
      htons(peers_[static_cast<std::size_t>(local_node_)].port);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string what =
        "tcp bind failed on port " +
        std::to_string(peers_[static_cast<std::size_t>(local_node_)].port);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw RpcError(what + ": " + std::strerror(errno));
  }
  const int backlog =
      std::max(16, static_cast<int>(peers_.size()) * 2);
  if (::listen(listen_fd_, backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("tcp listen failed");
  }
  struct sockaddr_in bound {};
  socklen_t blen = sizeof(bound);
  GE_CHECK(::getsockname(listen_fd_,
                         reinterpret_cast<struct sockaddr*>(&bound),
                         &blen) == 0,
           "getsockname failed");
  listen_port_ = ntohs(bound.sin_port);

  const obs::Labels labels{{"node", std::to_string(local_node_)}};
  auto& reg = obs::MetricRegistry::global();
  metric_regs_.push_back(
      reg.attach("rpc.tcp.frames_sent", labels, frames_sent_));
  metric_regs_.push_back(
      reg.attach("rpc.tcp.frames_received", labels, frames_received_));
  metric_regs_.push_back(
      reg.attach("rpc.tcp.bytes_sent", labels, bytes_sent_));
  metric_regs_.push_back(
      reg.attach("rpc.tcp.bytes_received", labels, bytes_received_));
  metric_regs_.push_back(
      reg.attach("rpc.tcp.peers_departed", labels, peers_departed_));
}

TcpTransport::~TcpTransport() { stop(); }

void TcpTransport::set_peer_port(int node, std::uint16_t port) {
  GE_REQUIRE(!meshed_, "peer ports are frozen once the mesh is up");
  GE_REQUIRE(node >= 0 && node < static_cast<int>(peers_.size()),
             "peer id out of range");
  peers_[static_cast<std::size_t>(node)].port = port;
}

int TcpTransport::connect_to_peer(int peer) const {
  const TcpPeer& spec = peers_[static_cast<std::size_t>(peer)];
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options_.connect_timeout_s));

  AddrInfo ai;
  struct addrinfo hints {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  const int gai = ::getaddrinfo(spec.host.c_str(),
                                std::to_string(spec.port).c_str(), &hints,
                                &ai.res);
  if (gai != 0) {
    throw RpcError("cannot resolve peer " + std::to_string(peer) + " (" +
                   spec.host + "): " + ::gai_strerror(gai));
  }

  for (;;) {
    const int fd = ::socket(ai.res->ai_family, SOCK_STREAM | SOCK_NONBLOCK,
                            0);
    if (fd < 0) throw_errno("tcp socket failed");
    int rc = ::connect(fd, ai.res->ai_addr, ai.res->ai_addrlen);
    if (rc != 0 && errno == EINPROGRESS) {
      struct pollfd pfd {};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      const double left = remaining_s(deadline);
      const int pr =
          ::poll(&pfd, 1, std::max(1, static_cast<int>(left * 1e3)));
      if (pr > 0) {
        int err = 0;
        socklen_t elen = sizeof(err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &elen);
        if (err == 0) {
          rc = 0;
        } else {
          errno = err;
          rc = -1;
        }
      } else {
        errno = ETIMEDOUT;
        rc = -1;
      }
    }
    if (rc == 0) {
      // Back to blocking mode: reader threads and the handshake use
      // plain blocking reads with SO_RCVTIMEO where needed.
      const int flags = ::fcntl(fd, F_GETFL, 0);
      ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
      set_nodelay(fd);
      return fd;
    }
    const int saved = errno;
    ::close(fd);
    // The peer's listener may simply not be up yet — start order is free.
    const bool retryable = saved == ECONNREFUSED || saved == ETIMEDOUT ||
                           saved == EHOSTUNREACH || saved == ENETUNREACH ||
                           saved == ECONNRESET || saved == EAGAIN;
    if (!retryable || remaining_s(deadline) <= 0) {
      errno = saved;
      throw_errno("cannot connect to peer " + std::to_string(peer) + " (" +
                  spec.host + ":" + std::to_string(spec.port) + ")");
    }
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.connect_retry_ms));
  }
}

void TcpTransport::accept_inbound() {
  const int n = static_cast<int>(peers_.size());
  int pending = n - 1;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options_.connect_timeout_s));
  while (pending > 0) {
    struct pollfd pfd {};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const double left = remaining_s(deadline);
    if (left <= 0) {
      throw RpcError("bootstrap timed out: " + std::to_string(pending) +
                     " peer(s) never connected to node " +
                     std::to_string(local_node_));
    }
    const int pr =
        ::poll(&pfd, 1, std::max(1, static_cast<int>(left * 1e3)));
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll on tcp listener failed");
    }
    if (pr == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      throw_errno("tcp accept failed");
    }
    set_nodelay(fd);
    // A connection that stalls mid-handshake (port scanner, wedged peer)
    // must not block bootstrap forever.
    set_recv_timeout(fd, std::max(1.0, remaining_s(deadline)));

    HelloFrame hello;
    if (!frame_io::read_exact(fd, &hello, sizeof(hello))) {
      ::close(fd);
      continue;  // closed before completing a HELLO — ignore
    }
    HelloExpectation expect;
    expect.local_node = local_node_;
    expect.cluster_size = n;
    expect.shard_epoch = options_.shard_epoch;
    expect.shard_fingerprint = options_.shard_fingerprint;
    expect.already_connected =
        hello.node_id >= 0 && hello.node_id < n &&
        in_fds_[static_cast<std::size_t>(hello.node_id)] >= 0;
    const HelloVerdict verdict = validate_hello(hello, expect);

    HelloReply reply;
    reply.status = static_cast<std::uint16_t>(verdict.status);
    reply.reason_len = static_cast<std::uint32_t>(verdict.reason.size());
    struct iovec iov[2];
    iov[0] = {&reply, sizeof(reply)};
    iov[1] = {const_cast<char*>(verdict.reason.data()),
              verdict.reason.size()};
    try {
      frame_io::writev_all(fd, iov, verdict.reason.empty() ? 1 : 2);
    } catch (const RpcError&) {
      ::close(fd);
      continue;  // peer vanished mid-handshake
    }
    if (!verdict.ok()) {
      GE_LOG(kWarn) << "node " << local_node_
                    << " rejected a peer HELLO: " << verdict.reason;
      ::close(fd);
      continue;
    }
    clear_recv_timeout(fd);
    in_fds_[static_cast<std::size_t>(hello.node_id)] = fd;
    --pending;
  }
}

void TcpTransport::barrier() {
  // The barrier deliberately runs AFTER start(): "sockets connected" is
  // not "ready to serve", and the window between the two is exactly where
  // a too-eager peer races requests into an unregistered service. READY
  // and GO frames are therefore observed by the reader threads, which
  // feed the rendezvous state below.
  GE_REQUIRE(started_, "call start() before barrier()");
  const int n = static_cast<int>(peers_.size());
  if (n == 1) return;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options_.connect_timeout_s));
  if (local_node_ == 0) {
    // Collect one kReady per peer (their outbound link to us), then
    // release everyone.
    {
      std::unique_lock<std::mutex> lock(barrier_mutex_);
      if (!barrier_cv_.wait_until(lock, deadline, [this, n] {
            return readies_seen_ >= n - 1;
          })) {
        throw RpcError("bootstrap barrier: only " +
                       std::to_string(readies_seen_) + "/" +
                       std::to_string(n - 1) +
                       " peer(s) reported READY in time");
      }
    }
    for (int dst = 1; dst < n; ++dst) {
      Link& link = *out_links_[static_cast<std::size_t>(dst)];
      frame_io::write_control(link.fd, link.write_mutex,
                              frame_io::ControlCode::kGo);
    }
  } else {
    Link& link = *out_links_[0];
    frame_io::write_control(link.fd, link.write_mutex,
                            frame_io::ControlCode::kReady);
    std::unique_lock<std::mutex> lock(barrier_mutex_);
    if (!barrier_cv_.wait_until(lock, deadline,
                                [this] { return go_seen_; })) {
      throw RpcError("bootstrap barrier: coordinator never sent GO");
    }
  }
}

void TcpTransport::connect_mesh() {
  GE_REQUIRE(!meshed_, "connect_mesh() already ran");
  const int n = static_cast<int>(peers_.size());
  out_links_.resize(static_cast<std::size_t>(n));
  for (auto& l : out_links_) l = std::make_unique<Link>();
  in_fds_.assign(static_cast<std::size_t>(n), -1);

  // Self loop: a socketpair, same as SocketTransport's diagonal.
  {
    int fds[2];
    GE_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
             "socketpair failed");
    out_links_[static_cast<std::size_t>(local_node_)]->fd = fds[0];
    in_fds_[static_cast<std::size_t>(local_node_)] = fds[1];
  }

  // Inbound accepts must run concurrently with our outbound connects:
  // every node is doing both at once, and an outbound HELLO only
  // completes when the peer's acceptor answers it.
  std::exception_ptr accept_error;
  std::thread acceptor([&] {
    try {
      accept_inbound();
    } catch (...) {
      accept_error = std::current_exception();
    }
  });

  std::exception_ptr connect_error;
  try {
    for (int dst = 0; dst < n; ++dst) {
      if (dst == local_node_) continue;
      const int fd = connect_to_peer(dst);
      HelloFrame hello;
      hello.node_id = local_node_;
      hello.cluster_size = n;
      hello.shard_epoch = options_.shard_epoch;
      hello.shard_fingerprint = options_.shard_fingerprint;
      struct iovec iov[1];
      iov[0] = {&hello, sizeof(hello)};
      frame_io::writev_all(fd, iov, 1);

      set_recv_timeout(fd, options_.connect_timeout_s);
      HelloReply reply;
      if (!frame_io::read_exact(fd, &reply, sizeof(reply))) {
        ::close(fd);
        throw RpcError("peer " + std::to_string(dst) +
                       " closed the link during the handshake");
      }
      if (reply.magic != kHelloMagic) {
        ::close(fd);
        throw RpcError("peer " + std::to_string(dst) +
                       " sent a malformed handshake reply");
      }
      if (reply.status != 0) {
        std::string reason(reply.reason_len, '\0');
        if (reply.reason_len != 0 &&
            !frame_io::read_exact(fd, reason.data(), reason.size())) {
          reason = "(reason truncated)";
        }
        ::close(fd);
        throw RpcError("peer " + std::to_string(dst) +
                       " rejected the handshake: " + reason);
      }
      clear_recv_timeout(fd);
      out_links_[static_cast<std::size_t>(dst)]->fd = fd;
    }
  } catch (...) {
    connect_error = std::current_exception();
  }
  acceptor.join();

  auto fail = [&](std::exception_ptr err) {
    // Tear down whatever half-mesh exists so the process can exit (or
    // retry with a fresh transport) cleanly.
    for (auto& l : out_links_) {
      if (l && l->fd >= 0) {
        ::close(l->fd);
        l->fd = -1;
      }
    }
    for (int& fd : in_fds_) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
    std::rethrow_exception(err);
  };
  if (connect_error) fail(connect_error);
  if (accept_error) fail(accept_error);
  meshed_ = true;
}

void TcpTransport::start(int machine_id, MessageHandler handler) {
  GE_REQUIRE(machine_id == local_node_,
             "a TcpTransport hosts exactly its own node");
  GE_REQUIRE(meshed_, "call connect_mesh() before start()");
  GE_REQUIRE(!started_, "node already started");
  handler_ = std::move(handler);
  started_ = true;
  for (int src = 0; src < static_cast<int>(peers_.size()); ++src) {
    const int fd = in_fds_[static_cast<std::size_t>(src)];
    readers_.emplace_back([this, src, fd] { reader_loop(src, fd); });
  }
}

void TcpTransport::send(Message msg) {
  const int n = static_cast<int>(peers_.size());
  GE_REQUIRE(msg.src_machine == local_node_,
             "send() from a foreign node id");
  GE_REQUIRE(msg.dst_machine >= 0 && msg.dst_machine < n,
             "dst_machine out of range");
  if (departed_[static_cast<std::size_t>(msg.dst_machine)].load(
          std::memory_order_acquire)) {
    throw RpcError("peer " + std::to_string(msg.dst_machine) +
                   " has left the cluster");
  }
  Link& link = *out_links_[static_cast<std::size_t>(msg.dst_machine)];
  const std::size_t wire = msg.wire_size();
  frame_io::write_message(link.fd, link.write_mutex, std::move(msg));
  frames_sent_.add(1);
  bytes_sent_.add(wire);
}

void TcpTransport::reader_loop(int peer, int fd) {
  std::vector<std::uint8_t> header;
  for (;;) {
    Message msg;
    frame_io::ControlCode control{};
    switch (frame_io::read_frame(fd, header, msg, control)) {
      case frame_io::ReadStatus::kClosed:
        // EOF without a LEAVE is only suspicious while WE are still a
        // mesh member — our own leave/detach/stop shuts these fds too.
        if (!departed_[static_cast<std::size_t>(peer)].load(
                std::memory_order_acquire) &&
            !stopped_.load(std::memory_order_acquire) &&
            !left_.load(std::memory_order_acquire) &&
            !detached_.load(std::memory_order_acquire) &&
            peer != local_node_) {
          GE_LOG(kWarn) << "node " << local_node_ << ": peer " << peer
                        << " disconnected without LEAVE";
          departed_[static_cast<std::size_t>(peer)].store(
              true, std::memory_order_release);
          peers_departed_.add(1);
        }
        // Only EOF proves no response can ever arrive from this peer;
        // fail whatever is still waiting on one.
        if (peer != local_node_ && peer_down_) peer_down_(peer);
        return;
      case frame_io::ReadStatus::kControl:
        if (control == frame_io::ControlCode::kLeave) {
          // The peer will send nothing NEW, but replies it wrote
          // concurrently with the LEAVE may still be in the pipe — keep
          // draining until EOF so no in-flight response is stranded
          // (losing one would hang its future forever).
          departed_[static_cast<std::size_t>(peer)].store(
              true, std::memory_order_release);
          peers_departed_.add(1);
        } else if (control == frame_io::ControlCode::kReady) {
          const std::lock_guard<std::mutex> lock(barrier_mutex_);
          ++readies_seen_;
          barrier_cv_.notify_all();
        } else if (control == frame_io::ControlCode::kGo) {
          const std::lock_guard<std::mutex> lock(barrier_mutex_);
          go_seen_ = true;
          barrier_cv_.notify_all();
        }
        break;
      case frame_io::ReadStatus::kMessage:
        frames_received_.add(1);
        bytes_received_.add(msg.wire_size());
        handler_(std::move(msg));
        break;
    }
  }
}

void TcpTransport::announce_leave() {
  if (left_.exchange(true)) return;
  if (!meshed_) return;
  for (int dst = 0; dst < static_cast<int>(peers_.size()); ++dst) {
    if (dst == local_node_) continue;
    Link& link = *out_links_[static_cast<std::size_t>(dst)];
    if (link.fd < 0) continue;
    if (departed_[static_cast<std::size_t>(dst)].load(
            std::memory_order_acquire)) {
      continue;  // they left first; nobody is reading that link
    }
    try {
      frame_io::write_control(link.fd, link.write_mutex,
                              frame_io::ControlCode::kLeave);
    } catch (const RpcError&) {
      // Peer already gone — leaving is best-effort by construction.
    }
  }
}

void TcpTransport::set_peer_down_handler(int machine_id,
                                         std::function<void(int)> on_down) {
  GE_REQUIRE(machine_id == local_node_,
             "a TcpTransport hosts exactly its own node");
  GE_REQUIRE(!started_, "peer-down handler must be set before start()");
  peer_down_ = std::move(on_down);
}

void TcpTransport::detach(int machine_id) {
  GE_REQUIRE(machine_id == local_node_,
             "a TcpTransport hosts exactly its own node");
  if (!started_) return;
  detached_.store(true, std::memory_order_release);
  for (const int fd : in_fds_) {
    if (fd >= 0) ::shutdown(fd, SHUT_RD);
  }
  for (auto& t : readers_) {
    if (t.joinable()) t.join();
  }
}

void TcpTransport::stop() {
  if (stopped_.exchange(true)) return;
  announce_leave();
  for (auto& l : out_links_) {
    if (l && l->fd >= 0) ::shutdown(l->fd, SHUT_RDWR);
  }
  for (const int fd : in_fds_) {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& t : readers_) {
    if (t.joinable()) t.join();
  }
  for (auto& l : out_links_) {
    if (l && l->fd >= 0) {
      ::close(l->fd);
      l->fd = -1;
    }
  }
  for (int& fd : in_fds_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace ppr
