// Shared frame I/O for the socket-based transports.
//
// SocketTransport (Unix socketpair mesh) and TcpTransport (real TCP mesh)
// speak the same wire framing:
//
//   data frame:    [u64 header_len][u64 payload_len][header][payload]
//   control frame: [u64 kControlTag][u64 code]
//
// where `header` is Message::encode_view()'s pooled header and `payload`
// is the message's own buffer (scatter-gathered with writev, never copied
// into a flat frame). Control frames reuse the length-prefix slot with a
// tag no data frame can produce (a header can never be 2^64-1 bytes), so
// one reader loop handles both planes. This file factors the hardened
// read/write loops — short reads, short writes, EINTR, SIGPIPE — so both
// transports share a single audited implementation.
#pragma once

#include <sys/uio.h>

#include <cstdint>
#include <mutex>
#include <vector>

#include "rpc/message.hpp"

namespace ppr::frame_io {

/// Length-prefix tag marking a control frame; the second u64 carries the
/// control code. Data frames always carry a real header length here.
inline constexpr std::uint64_t kControlTag = ~std::uint64_t{0};

/// Control codes carried by control frames.
enum class ControlCode : std::uint64_t {
  kReady = 1,  // bootstrap barrier: "my mesh links are all up"
  kGo = 2,     // bootstrap barrier release from the coordinator
  kLeave = 3,  // orderly departure; the peer sends no further frames
};

/// Outcome of read_frame().
enum class ReadStatus {
  kMessage,  // a data frame was decoded into `out`
  kControl,  // a control frame arrived; its code is in `out_control`
  kClosed,   // orderly EOF or reset — the link is gone
};

/// Write every byte of `iov[0..iovcnt)`, retrying short writes and EINTR.
/// Uses sendmsg(MSG_NOSIGNAL) so a departed peer surfaces as an RpcError
/// (EPIPE) instead of a process-killing SIGPIPE. Throws RpcError on any
/// unrecoverable error.
void writev_all(int fd, struct iovec* iov, int iovcnt);

/// Read exactly `n` bytes, retrying short reads and EINTR. Returns false
/// on orderly EOF or connection reset (the caller treats the link as
/// closed either way).
bool read_exact(int fd, void* data, std::size_t n);

/// Send `msg` as one scatter-gathered data frame under `write_mutex`
/// (frames from concurrent senders must never interleave). Consumes and
/// recycles both the pooled header and the message payload.
void write_message(int fd, std::mutex& write_mutex, Message msg);

/// Send a control frame under `write_mutex`.
void write_control(int fd, std::mutex& write_mutex, ControlCode code);

/// Read one frame. On kMessage, `out` holds the decoded message with its
/// payload read straight into a pool-recycled buffer; on kControl,
/// `out_control` holds the code; on kClosed the link is finished.
/// `header_scratch` is reused across calls to keep the loop allocation-
/// free once warm.
ReadStatus read_frame(int fd, std::vector<std::uint8_t>& header_scratch,
                      Message& out, ControlCode& out_control);

}  // namespace ppr::frame_io
