// RpcEndpoint: one per machine. Owns the pending-call table, dispatches
// incoming requests to registered services on a server thread pool (the
// "Graph Storage server process" of the paper), and completes futures when
// responses arrive.
//
// RemoteRef mirrors PyTorch's RRef: a handle to a service living on some
// machine. Calls through a local RemoteRef bypass the transport entirely
// (shared-memory access); remote calls go over the wire asynchronously.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "rpc/future.hpp"
#include "rpc/transport.hpp"

namespace ppr {

/// A service handles (method, request payload) -> response payload.
using ServiceHandler = std::function<std::vector<std::uint8_t>(
    const std::string& method, std::span<const std::uint8_t> payload)>;

class RpcEndpoint {
 public:
  /// `server_threads` is the size of the request-handling pool; the paper
  /// dedicates one storage-server process per machine, so 1 is the
  /// faithful default. The endpoint registers itself with the transport.
  RpcEndpoint(std::shared_ptr<Transport> transport, int machine_id,
              int server_threads = 1);
  ~RpcEndpoint();

  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  int machine_id() const { return machine_id_; }
  int num_machines() const { return transport_->num_machines(); }

  /// Register a named service. Must happen before peers call it.
  ///
  /// By default requests dispatch on the endpoint's own server pool. A
  /// non-null `pool` (caller-owned, must outlive the endpoint's traffic)
  /// gives this service a dedicated dispatch pool instead — essential for
  /// handlers that themselves issue remote calls (query execution): if
  /// those shared the storage-RPC pool, a cluster of nodes could exhaust
  /// every pool thread on blocked queries and deadlock the storage RPCs
  /// they are waiting on.
  void register_service(const std::string& name, ServiceHandler handler,
                        ThreadPool* pool = nullptr);

  /// Issue an asynchronous call to `dst`. Returns immediately.
  RpcFuture async_call(int dst, const std::string& service,
                       const std::string& method,
                       std::vector<std::uint8_t> payload);

  /// Convenience: async_call + wait.
  std::vector<std::uint8_t> sync_call(int dst, const std::string& service,
                                      const std::string& method,
                                      std::vector<std::uint8_t> payload);

  /// Direct dispatch to a locally registered service with no transport,
  /// serialization, or thread hop — the shared-memory path.
  std::vector<std::uint8_t> local_call(const std::string& service,
                                       const std::string& method,
                                       std::span<const std::uint8_t> payload);

  /// Register an additional peer-down observer. The transport exposes a
  /// single peer-down slot and the endpoint's constructor consumes it, so
  /// failover logic (routing-table promotion) chains through here. Hooks
  /// run on the transport's reader thread BEFORE the endpoint fails the
  /// peer's pending calls — a retry woken by that failure already sees
  /// the post-failover routing table. Hooks must not call back into the
  /// endpoint.
  void add_peer_down_hook(std::function<void(int)> hook);

 private:
  void on_message(Message msg);
  void on_peer_down(int peer);
  void handle_request(Message msg);
  /// Fail every pending call addressed to `peer` with RpcError. Invoked
  /// by the transport's peer-down hook once the link to `peer` hits EOF —
  /// past that point no response can arrive, so waiting is a hang.
  void fail_pending_to(int peer);

  std::shared_ptr<Transport> transport_;
  int machine_id_;

  struct ServiceEntry {
    ServiceHandler handler;
    ThreadPool* pool = nullptr;  // nullptr = the shared server pool
  };

  std::mutex services_mutex_;
  std::map<std::string, ServiceEntry> services_;

  struct PendingCall {
    RpcPromise promise;
    int dst = -1;
  };

  std::mutex pending_mutex_;
  std::map<std::uint64_t, PendingCall> pending_;
  std::atomic<std::uint64_t> next_call_id_{1};

  std::mutex hooks_mutex_;
  std::vector<std::function<void(int)>> peer_down_hooks_;

  // Last member on purpose: its destructor joins in-flight handler tasks,
  // which touch services_/pending_/transport_ — those must still exist.
  ThreadPool server_pool_;
};

/// Distributed shared pointer to a service instance on some machine.
class RemoteRef {
 public:
  RemoteRef() = default;
  RemoteRef(RpcEndpoint* endpoint, int owner_machine, std::string service)
      : endpoint_(endpoint),
        owner_(owner_machine),
        service_(std::move(service)) {}

  bool valid() const { return endpoint_ != nullptr; }
  int owner() const { return owner_; }
  const std::string& service() const { return service_; }
  bool is_local() const {
    return valid() && owner_ == endpoint_->machine_id();
  }

  /// Asynchronous invocation (always goes through the transport, even for
  /// local owners — used by tests and by the no-shared-memory mode).
  RpcFuture async_call(const std::string& method,
                       std::vector<std::uint8_t> payload) const {
    GE_CHECK(valid(), "call through invalid RemoteRef");
    return endpoint_->async_call(owner_, service_, method,
                                 std::move(payload));
  }

  /// Owner-aware invocation: local owners are called directly (shared
  /// memory), remote owners through RPC.
  std::vector<std::uint8_t> call(const std::string& method,
                                 std::span<const std::uint8_t> payload) const {
    GE_CHECK(valid(), "call through invalid RemoteRef");
    if (is_local()) return endpoint_->local_call(service_, method, payload);
    return endpoint_->sync_call(
        owner_, service_, method,
        std::vector<std::uint8_t>(payload.begin(), payload.end()));
  }

 private:
  RpcEndpoint* endpoint_ = nullptr;
  int owner_ = -1;
  std::string service_;
};

}  // namespace ppr
